//! Quickstart: schedule a small batch workload with Firmament.
//!
//! Builds a 8-machine cluster, submits two jobs, runs one scheduling round,
//! and prints the placements the min-cost max-flow solver chose.
//!
//! Run with: `cargo run --example quickstart`

use firmament::cluster::{ClusterEvent, ClusterState, Job, JobClass, Task, TopologySpec};
use firmament::core::{Firmament, SchedulingAction};
use firmament::policies::LoadSpreadingCostModel;

fn main() {
    let mut state = ClusterState::with_topology(&TopologySpec {
        machines: 8,
        machines_per_rack: 4,
        slots_per_machine: 2,
    });
    let mut scheduler = Firmament::new(LoadSpreadingCostModel::new());

    // Register the cluster's machines with the scheduler.
    let mut machines: Vec<_> = state.machines.values().cloned().collect();
    machines.sort_by_key(|m| m.id);
    for m in machines {
        scheduler
            .handle_event(&state, &ClusterEvent::MachineAdded { machine: m })
            .expect("register machine");
    }

    // Submit two jobs: five short tasks and three longer ones.
    for (job_id, n_tasks, duration_s) in [(0u64, 5usize, 10.0f64), (1, 3, 60.0)] {
        let job = Job::new(job_id, JobClass::Batch, 2, state.now);
        let tasks: Vec<Task> = (0..n_tasks)
            .map(|i| {
                Task::new(
                    job_id * 100 + i as u64,
                    job_id,
                    state.now,
                    (duration_s * 1e6) as u64,
                )
            })
            .collect();
        let ev = ClusterEvent::JobSubmitted { job, tasks };
        state.apply(&ev);
        scheduler.handle_event(&state, &ev).expect("submit job");
    }

    // One scheduling round: the solver reschedules the whole workload.
    let outcome = scheduler.schedule(&state).expect("scheduling round");
    println!(
        "solver: {} finished in {:?}, objective {}",
        outcome.winner, outcome.algorithm_runtime, outcome.objective
    );
    for action in &outcome.actions {
        match action {
            SchedulingAction::Place { task, machine } => {
                println!("  place task {task} on machine {machine}");
            }
            SchedulingAction::Preempt { task } => println!("  preempt task {task}"),
        }
    }
    println!(
        "{} placed, {} unscheduled",
        outcome.placed_tasks, outcome.unscheduled_tasks
    );
    assert_eq!(outcome.placed_tasks, 8, "all eight tasks fit the cluster");
}
