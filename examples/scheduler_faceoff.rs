//! Scheduler face-off: Firmament vs every baseline on one workload.
//!
//! Runs the same trace through Firmament (flow-based, rescheduling the
//! whole workload each round) and the four queue-based baselines, then
//! compares placement latency and task response times.
//!
//! Run with: `cargo run --release --example scheduler_faceoff`

use firmament::baselines::{
    KubernetesScheduler, MesosScheduler, QueueScheduler, SparrowScheduler, SwarmKitScheduler,
};
use firmament::cluster::TopologySpec;
use firmament::core::Firmament;
use firmament::policies::LoadSpreadingCostModel;
use firmament::sim::{run_flow_sim, run_queue_sim, SimConfig, TraceSpec};

fn config() -> SimConfig {
    let machines = 60;
    SimConfig {
        topology: TopologySpec {
            machines,
            machines_per_rack: 20,
            slots_per_machine: 6,
        },
        trace: TraceSpec {
            machines,
            slots_per_machine: 6,
            target_utilization: 0.7,
            service_job_fraction: 0.0,
            median_task_duration_s: 8.0,
            duration_sigma: 0.8,
            seed: 12,
            ..TraceSpec::default()
        },
        duration_s: 30.0,
        ..SimConfig::default()
    }
}

fn main() {
    println!("scheduler    placed  completed  p50_response  p99_response");
    let mut report = run_flow_sim(&config(), Firmament::new(LoadSpreadingCostModel::new()));
    print_row("firmament", &mut report);
    let baselines: Vec<Box<dyn QueueScheduler>> = vec![
        Box::new(SwarmKitScheduler),
        Box::new(KubernetesScheduler),
        Box::new(MesosScheduler::new()),
        Box::new(SparrowScheduler::new(3)),
    ];
    for b in baselines {
        let name = b.name();
        let mut report = run_queue_sim(&config(), b);
        print_row(name, &mut report);
    }
}

fn print_row(name: &str, report: &mut firmament::sim::SimReport) {
    let (p50, p99) = if report.task_response.is_empty() {
        (f64::NAN, f64::NAN)
    } else {
        (
            report.task_response.percentile(50.0),
            report.task_response.percentile(99.0),
        )
    };
    println!(
        "{name:<12} {:>6}  {:>9}  {p50:>11.2}s  {p99:>11.2}s",
        report.placed_tasks, report.completed_tasks,
    );
}
