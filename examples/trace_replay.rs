//! Accelerated Google-trace replay (Fig 18 scenario).
//!
//! Runs the synthetic Google-like workload through the full event-driven
//! simulator at increasing speedups and reports placement latency
//! percentiles for Firmament's dual solver.
//!
//! Run with: `cargo run --release --example trace_replay`

use firmament::cluster::TopologySpec;
use firmament::core::Firmament;
use firmament::policies::{QuincyConfig, QuincyCostModel};
use firmament::sim::{run_flow_sim, SimConfig, TraceSpec};

fn main() {
    let machines = 200;
    println!("speedup  p50_latency  p99_latency  rounds  placed");
    for speedup in [1.0f64, 50.0, 150.0] {
        let config = SimConfig {
            topology: TopologySpec {
                machines,
                machines_per_rack: 40,
                slots_per_machine: 12,
            },
            trace: TraceSpec {
                machines,
                slots_per_machine: 12,
                target_utilization: 0.8,
                speedup,
                seed: 99,
                ..TraceSpec::default()
            },
            duration_s: 20.0,
            ..SimConfig::default()
        };
        let mut report = run_flow_sim(
            &config,
            Firmament::new(QuincyCostModel::new(QuincyConfig::default())),
        );
        if report.placement_latency.is_empty() {
            println!("{speedup:>7}  (no placements in horizon)");
            continue;
        }
        println!(
            "{speedup:>7}  {:>10.4}s  {:>10.4}s  {:>6}  {:>6}",
            report.placement_latency.percentile(50.0),
            report.placement_latency.percentile(99.0),
            report.rounds,
            report.placed_tasks,
        );
    }
    println!("\nEven at high speedups the dual solver keeps placement latency bounded.");
}
