//! Firmament: fast, centralized cluster scheduling at scale.
//!
//! A Rust reproduction of *Gog, Schwarzkopf, Gleave, Watson, Hand —
//! "Firmament: Fast, Centralized Cluster Scheduling at Scale" (OSDI 2016)*.
//! This façade crate re-exports the workspace's public API:
//!
//! - [`flow`]: the flow-network substrate;
//! - [`mcmf`]: the four MCMF algorithms, incremental variants, and the
//!   speculative dual solver;
//! - [`cluster`]: machines, jobs, tasks, and the block store;
//! - [`policies`]: load-spreading, Quincy, and network-aware policies;
//! - [`core`]: the scheduler service and placement extraction;
//! - [`sim`]: the discrete-event simulator, trace generator, and testbed;
//! - [`baselines`]: Sparrow/SwarmKit/Kubernetes/Mesos placement logic.
//!
//! # Quickstart
//!
//! ```
//! use firmament::cluster::{ClusterEvent, ClusterState, Job, JobClass, Task, TopologySpec};
//! use firmament::core::Firmament;
//! use firmament::policies::LoadSpreadingPolicy;
//!
//! let mut state = ClusterState::with_topology(&TopologySpec::default());
//! let mut scheduler = Firmament::new(LoadSpreadingPolicy::new());
//! let machines: Vec<_> = state.machines.values().cloned().collect();
//! for m in machines {
//!     scheduler
//!         .handle_event(&state, &ClusterEvent::MachineAdded { machine: m })
//!         .unwrap();
//! }
//! let ev = ClusterEvent::JobSubmitted {
//!     job: Job::new(0, JobClass::Batch, 0, 0),
//!     tasks: vec![Task::new(0, 0, 0, 5_000_000)],
//! };
//! state.apply(&ev);
//! scheduler.handle_event(&state, &ev).unwrap();
//! let outcome = scheduler.schedule(&state).unwrap();
//! assert_eq!(outcome.placed_tasks, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use firmament_baselines as baselines;
pub use firmament_cluster as cluster;
pub use firmament_core as core;
pub use firmament_flow as flow;
pub use firmament_mcmf as mcmf;
pub use firmament_policies as policies;
pub use firmament_sim as sim;
