//! Firmament: fast, centralized cluster scheduling at scale.
//!
//! A Rust reproduction of *Gog, Schwarzkopf, Gleave, Watson, Hand —
//! "Firmament: Fast, Centralized Cluster Scheduling at Scale" (OSDI 2016)*.
//! This façade crate re-exports the workspace's public API:
//!
//! - [`flow`]: the flow-network substrate;
//! - [`mcmf`]: the four MCMF algorithms, incremental variants, and the
//!   speculative dual solver;
//! - [`cluster`]: machines, jobs, tasks, and the block store;
//! - [`policies`]: the declarative [`CostModel`](policies::CostModel) API
//!   and the load-spreading, Quincy, network-aware, and Octopus models;
//! - [`core`]: the scheduler service, the
//!   [`FlowGraphManager`](core::FlowGraphManager), and placement
//!   extraction;
//! - [`sim`]: the discrete-event simulator, trace generator, and testbed;
//! - [`baselines`]: Sparrow/SwarmKit/Kubernetes/Mesos placement logic.
//!
//! # Quickstart
//!
//! ```
//! use firmament::cluster::{ClusterEvent, ClusterState, Job, JobClass, Task, TopologySpec};
//! use firmament::core::Firmament;
//! use firmament::policies::LoadSpreadingCostModel;
//!
//! let mut state = ClusterState::with_topology(&TopologySpec::default());
//! let mut scheduler = Firmament::new(LoadSpreadingCostModel::new());
//! let machines: Vec<_> = state.machines.values().cloned().collect();
//! for m in machines {
//!     scheduler
//!         .handle_event(&state, &ClusterEvent::MachineAdded { machine: m })
//!         .unwrap();
//! }
//! let ev = ClusterEvent::JobSubmitted {
//!     job: Job::new(0, JobClass::Batch, 0, 0),
//!     tasks: vec![Task::new(0, 0, 0, 5_000_000)],
//! };
//! state.apply(&ev);
//! scheduler.handle_event(&state, &ev).unwrap();
//! let outcome = scheduler.schedule(&state).unwrap();
//! assert_eq!(outcome.placed_tasks, 1);
//! ```
//!
//! # Migrating from the `SchedulingPolicy` API (pre-0.2)
//!
//! The monolithic `SchedulingPolicy` trait — where each policy owned a
//! `GraphBase` and hand-maintained its flow network — has been split into
//! two cooperating APIs, mirroring real Firmament's
//! `CostModelInterface`/`FlowGraphManager` design:
//!
//! - [`policies::CostModel`] *declares* per-arc costs and arc structure
//!   (task → aggregate/machine arcs, aggregate → machine arcs,
//!   unscheduled costs, gang minimums) as pure functions of
//!   [`cluster::ClusterState`];
//! - [`core::FlowGraphManager`] owns the graph, translates
//!   [`cluster::ClusterEvent`]s into deltas, and runs the two-pass cost
//!   update of §6.3 touching only dirty nodes.
//!
//! Concretely:
//!
//! | pre-0.2 | 0.2 |
//! |---------|-----|
//! | `LoadSpreadingPolicy` / `QuincyPolicy` / `NetworkAwarePolicy` | `LoadSpreadingCostModel` / `QuincyCostModel` / `NetworkAwareCostModel` (deprecated aliases remain) |
//! | `impl SchedulingPolicy` (~300–450 lines incl. graph code) | `impl CostModel` (a few dozen lines of cost arithmetic) |
//! | `firmament.policy()` / `policy_mut()` | [`model()`](core::Firmament::model) / [`model_mut()`](core::Firmament::model_mut) |
//! | `firmament.policy().base().graph` | [`graph()`](core::Firmament::graph) |
//! | `policy.refresh_costs(&state)` | [`refresh(&state)`](core::Firmament::refresh) |
//! | `policy.base().task_node(..)` | [`manager().task_node(..)`](core::FlowGraphManager::task_node) |
//!
//! `extract_placements` now returns a `BTreeMap` (task-ordered), making
//! scheduler action order deterministic by construction, and the solver
//! consumes the graph by move (`DualSolver::solve_owned`) instead of
//! cloning it every round.
//!
//! # The delta-feed solver handoff (0.3)
//!
//! The manager's graph records every structural and pricing mutation in a
//! typed change log; once per round the scheduler drains and compacts it
//! into a [`flow::delta::DeltaBatch`] (add-then-remove cancels, repeated
//! re-pricings merge) and hands it to the solver alongside the graph:
//!
//! ```text
//!  events ─► FlowGraphManager ─► refresh (§6.3, dirty nodes only)
//!                 │                    │
//!                 │ take_deltas()      │ take_graph()
//!                 ▼                    ▼
//!           DeltaBatch ───────► DualSolver::solve_owned_with_deltas
//!                                      │
//!                 relaxation ∥ IncrementalCostScaling::solve_with_deltas
//!                                      │ optimal flow (adopted back)
//! ```
//!
//! The incremental cost-scaling side consumes the feed natively — no
//! full-graph diffing on the hot path: new nodes get targeted price
//! initialization, the starting ε comes from a violation scan over the
//! dirty region only, feasibility damage becomes local excesses, and the
//! ε-schedule's per-phase saturation visits only arcs adjacent to the
//! dirty region (see [`mcmf::incremental`] for the contract and
//! [`flow::delta`] for the compaction/replay rules). A configurable
//! safety valve (`IncrementalConfig::warm_work_bailout`) abandons a warm
//! attempt that exceeds a multiple of the last from-scratch solve's work
//! and re-solves cold, bounding warm-start pathologies. Per-round
//! telemetry (deltas fed, nodes touched, bailouts, winner) is surfaced on
//! [`core::RoundOutcome::solver`]. The feed's fidelity is pinned by the
//! delta-replay oracle in `tests/graph_refresh_differential.rs`:
//! replaying each round's batch onto the previous round's snapshot must
//! reproduce the live graph slot-exactly.
//!
//! # Migrating from scalar `ArcSpec` declarations (pre-0.4)
//!
//! Every [`policies::CostModel`] arc hook now declares a
//! [`policies::ArcBundle`] — a piecewise-linear **convex cost ladder**
//! (ordered `ArcSpec` segments with non-decreasing costs) — instead of a
//! single `(capacity, cost)` pair or a bare cost:
//!
//! | pre-0.4 | 0.4 |
//! |---------|-----|
//! | `task_arcs → Vec<(ArcTarget, i64)>` | `task_arcs → Vec<(ArcTarget, ArcBundle)>` — wrap each cost in [`ArcBundle::cost`] |
//! | `aggregate_arc → Option<ArcSpec>` | `aggregate_arc → Option<ArcBundle>` — `Some(ArcSpec { capacity, cost })` becomes `Some(ArcBundle::single(capacity, cost))` |
//! | `aggregate_to_aggregate → Vec<(AggregateId, ArcSpec)>` | `Vec<(AggregateId, ArcBundle)>` — same `single` wrapping |
//!
//! Single-segment bundles are behaviorally identical to the old scalar
//! arcs, so the migration is mechanical. The point of the change is what
//! multi-segment bundles buy: the manager materializes one parallel arc
//! per segment (stable per-segment slot identity — re-pricing a segment
//! is a pure `CostChanged` delta, never structural churn), so load-based
//! policies can declare *rising* per-unit costs and get **one-round load
//! spreading** (Quincy's convexity trick; see [`policies::ArcBundle`]
//! and the `convex_spreading` bench bin). The **convexity contract** —
//! segment costs never decrease — is validated at every declaration and
//! violations are rejected with `PolicyError::NonConvexBundle`: a
//! decreasing ladder would let the min-cost solver fill expensive
//! segments before cheap ones, silently corrupting the declared cost
//! function.
//!
//! Two new (defaulted) hooks ride along: `CostModel::dynamic_task_arcs`
//! opts waiting tasks' preference bundles into in-place re-pricing on
//! clock advance / dirty events (the task-side mirror of
//! `dynamic_aggregate_arcs`), and `CostModel::task_arcs_machine_local`
//! lets models whose task arcs reference the machine set only through
//! direct machine targets skip the per-waiting-task re-derivation on
//! machine add/remove. Cross-solver placement reproducibility is
//! available via [`mcmf::canonical::canonicalize_flow`], which maps any
//! degenerate optimum to the canonical one.
//!
//! # Capacity-bucketed ladders and the scale testbed (0.5)
//!
//! Per-slot convex ladders multiply aggregate → machine arcs by the slot
//! count — 150,000 parallel arcs for load-spreading at the paper's
//! 12,500-machine × 12-slot scale. [`policies::ArcBundle::bucketed`] is
//! the classic convex-cost compression: `O(log slots)` segments with
//! geometrically growing capacities (1, 1, 2, 4, …), each priced at the
//! rounded mean of the per-slot marginals it covers — convexity is
//! preserved (bucket means of a non-decreasing marginal are
//! non-decreasing), any load on a bucket boundary prices exactly like the
//! per-slot ladder, and the segment count depends only on the slot count,
//! so re-pricing under load drift stays a pure `CostChanged` delta on the
//! same stable slots (bucket-boundary drift under slot-count churn
//! re-sizes/parks/revives those slots in place — no structural churn).
//!
//! The shipped load-based models carry a [`policies::BundleShape`] knob
//! (`PerSlot`, the default, vs `Bucketed`):
//!
//! | model | bucketed constructor |
//! |-------|----------------------|
//! | `LoadSpreadingCostModel` | [`bucketed()`](policies::LoadSpreadingCostModel::bucketed) / [`with_shape`](policies::LoadSpreadingCostModel::with_shape) |
//! | `OctopusCostModel` | [`bucketed()`](policies::OctopusCostModel::bucketed) / `OctopusConfig::shape` |
//! | `HierarchicalTopologyCostModel` | [`bucketed()`](policies::HierarchicalTopologyCostModel::bucketed) / `TopologyConfig::shape` |
//!
//! The trade, quantified by the `scale_regression` testbed
//! (`firmament-bench`'s `scale` module, `tests/scale_regression.rs`, and
//! the CI `scale-smoke` job): arcs drop from `O(m·s)` to `O(m·log s)`
//! (12 slots → 5 segments/machine; 62,500 vs 150,000 ladder arcs at the
//! full-scale fig3 point, which now runs), while one-round burst
//! spreading goes bucket-granular — exact at bucket boundaries, within
//! one marginal step per task of the per-slot optimum otherwise (pinned
//! against canonicalized exact optima).
//!
//! Also in 0.5: **re-price-only rounds skip the solver race.** A round
//! whose whole `DeltaBatch` is `CostChanged` entries
//! ([`flow::delta::DeltaBatch::is_reprice_only`]) with every change a
//! rise on a flowless arc is proven quiescent; the dual executor then
//! runs the warm cost-scaling path alone (O(Δ), no relaxation thread, no
//! graph clone) and records the skip on
//! [`core::SolverStats::race_skipped`].
//!
//! [`policies::ArcBundle`]: policies::ArcBundle
//! [`ArcBundle::cost`]: policies::ArcBundle::cost
//! [`ArcBundle::single`]: policies::ArcBundle::single

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use firmament_baselines as baselines;
pub use firmament_cluster as cluster;
pub use firmament_core as core;
pub use firmament_flow as flow;
pub use firmament_mcmf as mcmf;
pub use firmament_policies as policies;
pub use firmament_sim as sim;
