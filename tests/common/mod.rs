//! Shared harness for the scheduler integration suites: build a cluster,
//! register its machines (in sorted order, so runs are reproducible),
//! submit jobs, and apply scheduler actions back to the cluster state.

use firmament::cluster::{ClusterEvent, ClusterState, Job, JobClass, Task, TopologySpec};
use firmament::core::{Firmament, SchedulingAction};
use firmament::policies::CostModel;

/// A cluster with the given shape and an empty workload.
pub fn cluster(machines: usize, slots: u32, machines_per_rack: usize) -> ClusterState {
    ClusterState::with_topology(&TopologySpec {
        machines,
        machines_per_rack,
        slots_per_machine: slots,
    })
}

/// Registers every machine with the scheduler, in machine-id order.
pub fn register<C: CostModel>(state: &ClusterState, f: &mut Firmament<C>) {
    let mut machines: Vec<_> = state.machines.values().cloned().collect();
    machines.sort_by_key(|m| m.id);
    for m in machines {
        f.handle_event(state, &ClusterEvent::MachineAdded { machine: m })
            .unwrap();
    }
}

/// Submits a batch job of `n` tasks (ids `job * 1000 + i`, 60 s runtime).
pub fn submit<C: CostModel>(state: &mut ClusterState, f: &mut Firmament<C>, job: u64, n: usize) {
    let j = Job::new(job, JobClass::Batch, 0, state.now);
    let tasks: Vec<Task> = (0..n)
        .map(|i| Task::new(job * 1000 + i as u64, job, state.now, 60_000_000))
        .collect();
    let ev = ClusterEvent::JobSubmitted { job: j, tasks };
    state.apply(&ev);
    f.handle_event(state, &ev).unwrap();
}

/// Applies a round's actions to the cluster and echoes them to the
/// scheduler, exactly as a cluster manager would.
pub fn apply<C: CostModel>(
    state: &mut ClusterState,
    f: &mut Firmament<C>,
    actions: &[SchedulingAction],
) {
    for a in actions {
        let ev = match a {
            SchedulingAction::Place { task, machine } => ClusterEvent::TaskPlaced {
                task: *task,
                machine: *machine,
                now: state.now,
            },
            SchedulingAction::Preempt { task } => ClusterEvent::TaskPreempted {
                task: *task,
                now: state.now,
            },
        };
        state.apply(&ev);
        f.handle_event(state, &ev).unwrap();
    }
}
