//! Cross-policy conformance suite for the [`CostModel`] API.
//!
//! Every cost model — the three paper policies, the Octopus model, and a
//! test-only custom model exercising the gang hook — is driven through the
//! same event scripts (submit, place, complete, preempt, machine add and
//! remove) and must uphold the scheduler-wide invariants:
//!
//! - **solver consistency**: every solver configuration produces the same
//!   objective for the same graph;
//! - **no thrash**: a round without cluster changes produces no actions;
//! - **accounting**: placements + unscheduled = incomplete tasks, and no
//!   machine is ever overcommitted;
//! - **recovery**: machine failure requeues and reschedules displaced
//!   tasks;
//! - **determinism**: identical seeded runs produce identical actions.

use firmament::cluster::{ClusterEvent, ClusterState, Job, Task};
use firmament::core::{Firmament, SchedulingAction};
use firmament::flow::{FlowGraph, NodeKind};
use firmament::mcmf::{DualConfig, SolverKind};
mod common;
use common::{apply, cluster, register, submit};
use firmament::policies::{
    CostModel, HierarchicalTopologyCostModel, LoadSpreadingCostModel, NetworkAwareCostModel,
    OctopusCostModel, QuincyConfig, QuincyCostModel,
};

/// Flow conservation at every aggregator level: for each non-terminal
/// node (aggregates, rack/cluster/request aggregators, unscheduled
/// aggregators — anything between tasks and the sink), inflow must equal
/// outflow. With EC→EC hierarchies, flow crosses *multiple* aggregator
/// hops, and a refresh bug at any level would strand or invent flow.
fn assert_aggregator_flow_conservation(g: &FlowGraph, policy: &str) {
    for n in g.node_ids() {
        let kind = g.kind(n);
        if !kind.is_aggregator() && !kind.is_machine() {
            continue;
        }
        let mut inflow = 0i64;
        let mut outflow = 0i64;
        for &a in g.adj(n) {
            let f = g.flow(a.forward());
            if a.is_forward() {
                outflow += f;
            } else {
                inflow += f;
            }
        }
        assert_eq!(
            inflow, outflow,
            "{policy}: node {kind} violates flow conservation ({inflow} in, {outflow} out)"
        );
    }
}

fn assert_no_overcommit(state: &ClusterState, policy: &str) {
    for m in state.machines.values() {
        assert!(
            m.running.len() as u32 <= m.slots,
            "{policy}: machine {} overcommitted ({}/{})",
            m.id,
            m.running.len(),
            m.slots
        );
    }
}

/// The shared event script: submit → place → complete → churn (machine
/// remove + add) → reschedule, asserting invariants after every round.
/// Returns all actions, in order, so callers can compare runs.
fn run_script<C: CostModel>(mut f: Firmament<C>) -> Vec<SchedulingAction> {
    let policy = f.model().name();
    let mut state = cluster(8, 2, 4);
    register(&state, &mut f);
    let mut log = Vec::new();

    // Round 1: a job that fits.
    submit(&mut state, &mut f, 0, 10);
    let o = f.schedule(&state).unwrap();
    assert_aggregator_flow_conservation(f.graph(), policy);
    assert_eq!(o.placed_tasks, 10, "{policy}: round 1 places everything");
    assert_eq!(o.placed_tasks + o.unscheduled_tasks, 10, "{policy}");
    apply(&mut state, &mut f, &o.actions);
    assert_no_overcommit(&state, policy);
    log.extend(o.actions);

    // No-thrash: nothing changed, nothing moves.
    let o = f.schedule(&state).unwrap();
    assert_aggregator_flow_conservation(f.graph(), policy);
    assert!(
        o.actions.is_empty(),
        "{policy}: stable round must be action-free, got {:?}",
        o.actions
    );

    // Oversubscribe: a second job beyond capacity.
    submit(&mut state, &mut f, 1, 10);
    let o = f.schedule(&state).unwrap();
    assert_aggregator_flow_conservation(f.graph(), policy);
    assert_eq!(
        o.placed_tasks + o.unscheduled_tasks,
        20,
        "{policy}: accounting covers all incomplete tasks"
    );
    assert_eq!(o.placed_tasks, 16, "{policy}: all 16 slots fill");
    apply(&mut state, &mut f, &o.actions);
    assert_no_overcommit(&state, policy);
    log.extend(o.actions);

    // Complete three running tasks; the freed slots go to waiting tasks.
    let mut running: Vec<u64> = state.running_tasks().map(|t| t.id).collect();
    running.sort_unstable();
    for t in running.into_iter().take(3) {
        state.now += 1;
        let ev = ClusterEvent::TaskCompleted {
            task: t,
            now: state.now,
        };
        state.apply(&ev);
        f.handle_event(&state, &ev).unwrap();
    }
    let o = f.schedule(&state).unwrap();
    assert_aggregator_flow_conservation(f.graph(), policy);
    assert_eq!(o.placed_tasks, 16, "{policy}: freed slots refill");
    apply(&mut state, &mut f, &o.actions);
    assert_no_overcommit(&state, policy);
    log.extend(o.actions);

    // Fail a machine hosting tasks, then reschedule the displaced work.
    let victim = state
        .machines
        .values()
        .filter(|m| !m.running.is_empty())
        .map(|m| m.id)
        .min()
        .unwrap();
    state.now += 5;
    let removed = state.machines[&victim].clone();
    let ev = ClusterEvent::MachineRemoved {
        machine: victim,
        now: state.now,
    };
    state.apply(&ev);
    f.handle_event(&state, &ev).unwrap();
    let o = f.schedule(&state).unwrap();
    assert_aggregator_flow_conservation(f.graph(), policy);
    apply(&mut state, &mut f, &o.actions);
    assert_no_overcommit(&state, policy);
    assert_eq!(
        state.used_slots(),
        14,
        "{policy}: remaining 7 machines × 2 slots refill after failure"
    );
    log.extend(o.actions);

    // The machine comes back repaired; capacity reappears.
    state.now += 5;
    let mut repaired = removed;
    repaired.running.clear();
    let ev = ClusterEvent::MachineAdded { machine: repaired };
    state.apply(&ev);
    f.handle_event(&state, &ev).unwrap();
    let o = f.schedule(&state).unwrap();
    assert_aggregator_flow_conservation(f.graph(), policy);
    apply(&mut state, &mut f, &o.actions);
    assert_no_overcommit(&state, policy);
    assert_eq!(
        state.used_slots(),
        16,
        "{policy}: full capacity reused after repair"
    );
    log.extend(o.actions);
    log
}

#[test]
fn load_spreading_conforms() {
    run_script(Firmament::new(LoadSpreadingCostModel::new()));
}

#[test]
fn load_spreading_uniform_variant_conforms() {
    // The pre-bundle single-segment arcs (the convex_spreading bench's
    // contrast baseline) must uphold the same invariants.
    run_script(Firmament::new(LoadSpreadingCostModel::uniform()));
}

#[test]
fn quincy_conforms() {
    run_script(Firmament::new(
        QuincyCostModel::new(QuincyConfig::default()),
    ));
}

#[test]
fn network_aware_conforms() {
    run_script(Firmament::new(NetworkAwareCostModel::new()));
}

#[test]
fn octopus_conforms() {
    run_script(Firmament::new(OctopusCostModel::new()));
}

/// Identical runs of the same script under one solver algorithm must
/// produce byte-identical action logs: placement extraction orders by
/// task id (`BTreeMap`) and the graph manager materializes arcs in
/// sorted order, so there is no hash-map iteration order anywhere in the
/// decision path.
///
/// Determinism is asserted per single-algorithm configuration. The
/// *dual* race picks whichever algorithm finishes first — a wall-clock
/// property — and equally-optimal flows from different algorithms may
/// permute equal-cost assignments, so the default `SolverKind::Dual` is
/// deterministic in objective but not in action bytes. (This became
/// observable once the delta-fed warm start made incremental cost
/// scaling fast enough to actually win races.)
fn assert_deterministic<C: CostModel>(make: impl Fn() -> C) {
    for kind in [SolverKind::RelaxationOnly, SolverKind::CostScalingOnly] {
        let mk = || {
            Firmament::with_solver(
                make(),
                DualConfig {
                    kind,
                    ..Default::default()
                },
            )
        };
        let a = run_script(mk());
        let b = run_script(mk());
        assert_eq!(a, b, "{} runs diverged under {kind:?}", make().name());
    }
}

#[test]
fn repeat_runs_are_deterministic() {
    assert_deterministic(|| QuincyCostModel::new(QuincyConfig::default()));
    assert_deterministic(OctopusCostModel::new);
}

/// Every solver configuration agrees on the objective for every model —
/// the solver-consistency invariant across the whole policy surface.
#[test]
fn solver_kinds_agree_for_every_model() {
    fn objectives<C: CostModel>(make: impl Fn() -> C) -> Vec<i64> {
        [
            SolverKind::Dual,
            SolverKind::RelaxationOnly,
            SolverKind::CostScalingOnly,
        ]
        .into_iter()
        .map(|kind| {
            let mut state = cluster(6, 2, 4);
            let mut f = Firmament::with_solver(
                make(),
                DualConfig {
                    kind,
                    ..Default::default()
                },
            );
            register(&state, &mut f);
            submit(&mut state, &mut f, 0, 9);
            f.schedule(&state).unwrap().objective
        })
        .collect()
    }
    for objs in [
        objectives(LoadSpreadingCostModel::new),
        objectives(|| QuincyCostModel::new(QuincyConfig::default())),
        objectives(NetworkAwareCostModel::new),
        objectives(OctopusCostModel::new),
        objectives(HierarchicalTopologyCostModel::new),
    ] {
        assert_eq!(objs[0], objs[1]);
        assert_eq!(objs[1], objs[2]);
    }
}

/// A custom model with a gang requirement proves the API's extensibility:
/// even though unscheduled flow is free, the gang constraint forces the
/// job's minimum through machines.
struct GangModel;

impl CostModel for GangModel {
    fn name(&self) -> &'static str {
        "gang-test"
    }
    fn task_unscheduled_cost(&self, _: &ClusterState, _: &Task) -> i64 {
        0
    }
    fn task_arcs(
        &self,
        _: &ClusterState,
        _: &Task,
    ) -> Vec<(
        firmament::policies::ArcTarget,
        firmament::policies::ArcBundle,
    )> {
        vec![(
            firmament::policies::ArcTarget::Aggregate(0),
            firmament::policies::ArcBundle::cost(1),
        )]
    }
    fn aggregate_arc(
        &self,
        _: &ClusterState,
        _: firmament::policies::AggregateId,
        machine: &firmament::cluster::Machine,
    ) -> Option<firmament::policies::ArcBundle> {
        Some(firmament::policies::ArcBundle::single(
            machine.slots as i64,
            100,
        ))
    }
    fn job_gang_minimum(&self, _: &ClusterState, _: &Job) -> i64 {
        3
    }
}

#[test]
fn gang_minimum_forces_placements() {
    let mut state = cluster(4, 2, 4);
    let mut f = Firmament::new(GangModel);
    register(&state, &mut f);
    submit(&mut state, &mut f, 0, 5);
    let o = f.schedule(&state).unwrap();
    assert_aggregator_flow_conservation(f.graph(), "gang-test");
    // Placing costs 100+ per task while unscheduled is free, so without
    // the gang floor the solver would place nothing.
    assert!(
        o.placed_tasks >= 3,
        "gang minimum of 3 must force ≥3 placements, got {}",
        o.placed_tasks
    );
    assert!(
        o.placed_tasks < 5,
        "free unscheduled flow keeps the rest waiting"
    );
}

/// A model whose ladder prices *decrease* breaks the convexity contract:
/// the manager must reject it with the typed error — through the full
/// scheduler event path, not just the manager API.
struct DecreasingLadderModel;

impl CostModel for DecreasingLadderModel {
    fn name(&self) -> &'static str {
        "decreasing-ladder"
    }
    fn task_unscheduled_cost(&self, _: &ClusterState, _: &Task) -> i64 {
        100_000
    }
    fn task_arcs(
        &self,
        _: &ClusterState,
        _: &Task,
    ) -> Vec<(
        firmament::policies::ArcTarget,
        firmament::policies::ArcBundle,
    )> {
        vec![(
            firmament::policies::ArcTarget::Aggregate(0),
            firmament::policies::ArcBundle::cost(1),
        )]
    }
    fn aggregate_arc(
        &self,
        _: &ClusterState,
        _: firmament::policies::AggregateId,
        _: &firmament::cluster::Machine,
    ) -> Option<firmament::policies::ArcBundle> {
        // "First slot expensive, second cheap" — the solver would fill
        // the cheap segment first, corrupting the declared cost curve.
        Some(firmament::policies::ArcBundle::ladder([20, 10]))
    }
}

#[test]
fn non_convex_ladder_is_rejected_with_typed_error() {
    let mut state = cluster(2, 2, 4);
    let mut f = Firmament::new(DecreasingLadderModel);
    register(&state, &mut f);
    let j = Job::new(0, firmament::cluster::JobClass::Batch, 0, 0);
    let tasks = vec![Task::new(0, 0, 0, 1_000_000)];
    let ev = ClusterEvent::JobSubmitted { job: j, tasks };
    state.apply(&ev);
    let err = f.handle_event(&state, &ev);
    match err {
        Err(firmament::core::SchedulerError::Policy(
            firmament::policies::PolicyError::NonConvexBundle { hook, prev, next },
        )) => {
            assert_eq!(hook, "aggregate_arc");
            assert_eq!((prev, next), (20, 10));
        }
        other => panic!("expected NonConvexBundle, got {other:?}"),
    }
}

/// Every shipped model's declared bundles satisfy the convexity contract
/// for every (aggregate, machine) pair it connects — the static check
/// backing the manager's runtime validation.
#[test]
fn all_shipped_models_declare_convex_bundles() {
    let state = cluster(6, 2, 3);
    let models: Vec<Box<dyn CostModel>> = vec![
        Box::new(LoadSpreadingCostModel::new()),
        Box::new(LoadSpreadingCostModel::uniform()),
        Box::new(QuincyCostModel::new(QuincyConfig::default())),
        Box::new(OctopusCostModel::new()),
        Box::new(NetworkAwareCostModel::new()),
        Box::new(HierarchicalTopologyCostModel::new()),
    ];
    for model in &models {
        let t = Task::new(0, 0, 0, 1_000_000);
        for (_, bundle) in model.task_arcs(&state, &t) {
            assert!(bundle.is_convex(), "{}: task bundle", model.name());
        }
        for agg in 0..8u64 {
            for m in state.machines.values() {
                if let Some(bundle) = model.aggregate_arc(&state, agg, m) {
                    assert!(
                        bundle.is_convex(),
                        "{}: aggregate {agg} → machine {}",
                        model.name(),
                        m.id
                    );
                }
            }
            for (_, bundle) in model.aggregate_to_aggregate(&state, agg) {
                assert!(bundle.is_convex(), "{}: EC→EC from {agg}", model.name());
            }
        }
    }
}

/// The EC→EC hierarchy model upholds every invariant of the shared
/// script: placements are extracted through two aggregator hops (task →
/// cluster root → rack → machine) with flow conserved at both levels.
#[test]
fn hierarchical_topology_conforms() {
    run_script(Firmament::new(HierarchicalTopologyCostModel::new()));
}

#[test]
fn hierarchical_topology_is_deterministic() {
    assert_deterministic(HierarchicalTopologyCostModel::new);
}

/// End-to-end 3-level scheduling: every placement's flow crosses the
/// cluster root *and* a rack aggregate (no task or root arc touches a
/// machine directly), and both levels conserve flow exactly.
#[test]
fn hierarchy_places_through_two_aggregator_hops() {
    let mut state = cluster(6, 2, 3); // 2 racks × 3 machines × 2 slots
    let mut f = Firmament::new(HierarchicalTopologyCostModel::new());
    register(&state, &mut f);
    submit(&mut state, &mut f, 0, 9);
    let o = f.schedule(&state).unwrap();
    assert_eq!(o.placed_tasks, 9, "capacity exists for the whole job");
    assert_aggregator_flow_conservation(f.graph(), "hierarchical-topology");
    let g = f.graph();
    // All placed flow funnels through the single cluster root...
    let root = g
        .node_ids()
        .find(|&n| matches!(g.kind(n), NodeKind::ClusterAggregator))
        .expect("root materialized");
    let root_out: i64 = g
        .adj(root)
        .iter()
        .filter(|a| a.is_forward())
        .map(|&a| g.flow(a))
        .sum();
    assert_eq!(root_out, 9, "all placements route through the root");
    // ...then through rack aggregates, never skipping a level.
    for &a in g.adj(root) {
        if a.is_forward() && g.flow(a) > 0 {
            assert!(
                matches!(g.kind(g.dst(a)), NodeKind::RackAggregator { .. }),
                "root flow must descend to a rack aggregate"
            );
        }
    }
    let rack_to_machine: i64 = g
        .node_ids()
        .filter(|&n| matches!(g.kind(n), NodeKind::RackAggregator { .. }))
        .flat_map(|n| g.adj(n).to_vec())
        .filter(|a| a.is_forward())
        .map(|a| g.flow(a))
        .sum();
    assert_eq!(rack_to_machine, 9, "every unit crosses the rack level too");
    // Cross-rack spreading: with 9 tasks over 2 racks of 6 slots, the
    // load-priced rack arcs split the job across racks.
    apply(&mut state, &mut f, &o.actions);
    let mut per_rack = std::collections::HashMap::new();
    for m in state.machines.values() {
        *per_rack.entry(m.rack).or_insert(0usize) += m.running.len();
    }
    assert!(
        per_rack.values().all(|&n| n >= 3),
        "rack load costs must spread the job, got {per_rack:?}"
    );
}

/// A gang minimum beyond total capacity used to surface as a solver
/// infeasibility error; admission control now queues the job instead and
/// admits it automatically once capacity appears (ROADMAP item).
struct HungryGangModel;

impl CostModel for HungryGangModel {
    fn name(&self) -> &'static str {
        "hungry-gang"
    }
    fn task_unscheduled_cost(&self, _: &ClusterState, _: &Task) -> i64 {
        0
    }
    fn task_arcs(
        &self,
        _: &ClusterState,
        _: &Task,
    ) -> Vec<(
        firmament::policies::ArcTarget,
        firmament::policies::ArcBundle,
    )> {
        vec![(
            firmament::policies::ArcTarget::Aggregate(0),
            firmament::policies::ArcBundle::cost(1),
        )]
    }
    fn aggregate_arc(
        &self,
        _: &ClusterState,
        _: firmament::policies::AggregateId,
        machine: &firmament::cluster::Machine,
    ) -> Option<firmament::policies::ArcBundle> {
        Some(firmament::policies::ArcBundle::single(
            machine.slots as i64,
            100,
        ))
    }
    fn job_gang_minimum(&self, _: &ClusterState, _: &Job) -> i64 {
        6
    }
}

#[test]
fn gang_beyond_capacity_queues_instead_of_erroring() {
    // 4 slots total, gang minimum 6: enforcing it would make the network
    // infeasible.
    let mut state = cluster(4, 1, 4);
    let mut f = Firmament::new(HungryGangModel);
    register(&state, &mut f);
    submit(&mut state, &mut f, 0, 6);
    let o = f
        .schedule(&state)
        .expect("oversized gang must not produce a solver error");
    assert_eq!(o.deferred_gang_jobs, vec![0], "the job is queued");
    assert_eq!(
        o.placed_tasks, 0,
        "unconstrained free-unscheduled flow places nothing"
    );
    // Capacity arrives: four more machines make the gang feasible.
    for id in 100..104u64 {
        let m = firmament::cluster::Machine::new(id, 0, 1);
        let ev = ClusterEvent::MachineAdded { machine: m };
        state.apply(&ev);
        f.handle_event(&state, &ev).unwrap();
    }
    let o = f.schedule(&state).unwrap();
    assert!(o.deferred_gang_jobs.is_empty(), "gang admitted");
    assert!(
        o.placed_tasks >= 6,
        "admitted gang forces ≥6 placements, got {}",
        o.placed_tasks
    );
}

/// A model that keys an aggregate per *job* — exactly the pattern the old
/// permanent-aggregate contract warned against. With garbage collection,
/// job churn must no longer grow the graph without bound.
struct PerJobAggModel;

impl CostModel for PerJobAggModel {
    fn name(&self) -> &'static str {
        "per-job-agg"
    }
    fn task_unscheduled_cost(&self, _: &ClusterState, _: &Task) -> i64 {
        100_000
    }
    fn task_arcs(
        &self,
        _: &ClusterState,
        task: &Task,
    ) -> Vec<(
        firmament::policies::ArcTarget,
        firmament::policies::ArcBundle,
    )> {
        vec![(
            firmament::policies::ArcTarget::Aggregate(task.job),
            firmament::policies::ArcBundle::cost(1),
        )]
    }
    fn aggregate_arc(
        &self,
        _: &ClusterState,
        _: firmament::policies::AggregateId,
        machine: &firmament::cluster::Machine,
    ) -> Option<firmament::policies::ArcBundle> {
        Some(firmament::policies::ArcBundle::single(
            machine.slots as i64,
            machine.running.len() as i64,
        ))
    }
}

#[test]
fn aggregate_gc_bounds_graph_over_job_churn() {
    let mut state = cluster(4, 2, 4);
    let mut f = Firmament::new(PerJobAggModel);
    register(&state, &mut f);
    let baseline = f.graph().node_count();
    let mut peak = 0usize;
    for job in 0..30u64 {
        submit(&mut state, &mut f, job, 4);
        let o = f.schedule(&state).unwrap();
        assert_eq!(o.placed_tasks, 4, "job {job} fits");
        apply(&mut state, &mut f, &o.actions);
        peak = peak.max(f.graph().node_count());
        // Complete the whole job.
        let mut running: Vec<u64> = state.running_tasks().map(|t| t.id).collect();
        running.sort_unstable();
        for t in running {
            state.now += 1;
            let ev = ClusterEvent::TaskCompleted {
                task: t,
                now: state.now,
            };
            state.apply(&ev);
            f.handle_event(&state, &ev).unwrap();
        }
        f.schedule(&state).unwrap();
    }
    // Per-job aggregates and U_j nodes are freed as their jobs drain: the
    // graph never accumulates more than one job's worth of extra nodes.
    assert!(
        peak <= baseline + 4 /* tasks */ + 1 /* aggregate */ + 1 /* U_j */ + 2,
        "graph grew over churn: baseline {baseline}, peak {peak}"
    );
    assert_eq!(
        f.graph().node_count(),
        baseline,
        "after all jobs drain, only sink + machines remain"
    );
    assert!(f.manager().stats().aggregates_collected >= 30);
}
