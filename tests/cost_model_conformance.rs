//! Cross-policy conformance suite for the [`CostModel`] API.
//!
//! Every cost model — the three paper policies, the Octopus model, and a
//! test-only custom model exercising the gang hook — is driven through the
//! same event scripts (submit, place, complete, preempt, machine add and
//! remove) and must uphold the scheduler-wide invariants:
//!
//! - **solver consistency**: every solver configuration produces the same
//!   objective for the same graph;
//! - **no thrash**: a round without cluster changes produces no actions;
//! - **accounting**: placements + unscheduled = incomplete tasks, and no
//!   machine is ever overcommitted;
//! - **recovery**: machine failure requeues and reschedules displaced
//!   tasks;
//! - **determinism**: identical seeded runs produce identical actions.

use firmament::cluster::{ClusterEvent, ClusterState, Job, Task};
use firmament::core::{Firmament, SchedulingAction};
use firmament::mcmf::{DualConfig, SolverKind};
mod common;
use common::{apply, cluster, register, submit};
use firmament::policies::{
    CostModel, LoadSpreadingCostModel, NetworkAwareCostModel, OctopusCostModel, QuincyConfig,
    QuincyCostModel,
};

fn assert_no_overcommit(state: &ClusterState, policy: &str) {
    for m in state.machines.values() {
        assert!(
            m.running.len() as u32 <= m.slots,
            "{policy}: machine {} overcommitted ({}/{})",
            m.id,
            m.running.len(),
            m.slots
        );
    }
}

/// The shared event script: submit → place → complete → churn (machine
/// remove + add) → reschedule, asserting invariants after every round.
/// Returns all actions, in order, so callers can compare runs.
fn run_script<C: CostModel>(mut f: Firmament<C>) -> Vec<SchedulingAction> {
    let policy = f.model().name();
    let mut state = cluster(8, 2, 4);
    register(&state, &mut f);
    let mut log = Vec::new();

    // Round 1: a job that fits.
    submit(&mut state, &mut f, 0, 10);
    let o = f.schedule(&state).unwrap();
    assert_eq!(o.placed_tasks, 10, "{policy}: round 1 places everything");
    assert_eq!(o.placed_tasks + o.unscheduled_tasks, 10, "{policy}");
    apply(&mut state, &mut f, &o.actions);
    assert_no_overcommit(&state, policy);
    log.extend(o.actions);

    // No-thrash: nothing changed, nothing moves.
    let o = f.schedule(&state).unwrap();
    assert!(
        o.actions.is_empty(),
        "{policy}: stable round must be action-free, got {:?}",
        o.actions
    );

    // Oversubscribe: a second job beyond capacity.
    submit(&mut state, &mut f, 1, 10);
    let o = f.schedule(&state).unwrap();
    assert_eq!(
        o.placed_tasks + o.unscheduled_tasks,
        20,
        "{policy}: accounting covers all incomplete tasks"
    );
    assert_eq!(o.placed_tasks, 16, "{policy}: all 16 slots fill");
    apply(&mut state, &mut f, &o.actions);
    assert_no_overcommit(&state, policy);
    log.extend(o.actions);

    // Complete three running tasks; the freed slots go to waiting tasks.
    let mut running: Vec<u64> = state.running_tasks().map(|t| t.id).collect();
    running.sort_unstable();
    for t in running.into_iter().take(3) {
        state.now += 1;
        let ev = ClusterEvent::TaskCompleted {
            task: t,
            now: state.now,
        };
        state.apply(&ev);
        f.handle_event(&state, &ev).unwrap();
    }
    let o = f.schedule(&state).unwrap();
    assert_eq!(o.placed_tasks, 16, "{policy}: freed slots refill");
    apply(&mut state, &mut f, &o.actions);
    assert_no_overcommit(&state, policy);
    log.extend(o.actions);

    // Fail a machine hosting tasks, then reschedule the displaced work.
    let victim = state
        .machines
        .values()
        .filter(|m| !m.running.is_empty())
        .map(|m| m.id)
        .min()
        .unwrap();
    state.now += 5;
    let removed = state.machines[&victim].clone();
    let ev = ClusterEvent::MachineRemoved {
        machine: victim,
        now: state.now,
    };
    state.apply(&ev);
    f.handle_event(&state, &ev).unwrap();
    let o = f.schedule(&state).unwrap();
    apply(&mut state, &mut f, &o.actions);
    assert_no_overcommit(&state, policy);
    assert_eq!(
        state.used_slots(),
        14,
        "{policy}: remaining 7 machines × 2 slots refill after failure"
    );
    log.extend(o.actions);

    // The machine comes back repaired; capacity reappears.
    state.now += 5;
    let mut repaired = removed;
    repaired.running.clear();
    let ev = ClusterEvent::MachineAdded { machine: repaired };
    state.apply(&ev);
    f.handle_event(&state, &ev).unwrap();
    let o = f.schedule(&state).unwrap();
    apply(&mut state, &mut f, &o.actions);
    assert_no_overcommit(&state, policy);
    assert_eq!(
        state.used_slots(),
        16,
        "{policy}: full capacity reused after repair"
    );
    log.extend(o.actions);
    log
}

#[test]
fn load_spreading_conforms() {
    run_script(Firmament::new(LoadSpreadingCostModel::new()));
}

#[test]
fn quincy_conforms() {
    run_script(Firmament::new(
        QuincyCostModel::new(QuincyConfig::default()),
    ));
}

#[test]
fn network_aware_conforms() {
    run_script(Firmament::new(NetworkAwareCostModel::new()));
}

#[test]
fn octopus_conforms() {
    run_script(Firmament::new(OctopusCostModel::new()));
}

/// Identical runs of the same script must produce byte-identical action
/// logs: placement extraction orders by task id (`BTreeMap`) and the graph
/// manager materializes arcs in sorted order, so there is no hash-map
/// iteration order anywhere in the decision path.
#[test]
fn repeat_runs_are_deterministic() {
    let a = run_script(Firmament::new(
        QuincyCostModel::new(QuincyConfig::default()),
    ));
    let b = run_script(Firmament::new(
        QuincyCostModel::new(QuincyConfig::default()),
    ));
    assert_eq!(a, b, "quincy runs diverged");
    let a = run_script(Firmament::new(OctopusCostModel::new()));
    let b = run_script(Firmament::new(OctopusCostModel::new()));
    assert_eq!(a, b, "octopus runs diverged");
}

/// Every solver configuration agrees on the objective for every model —
/// the solver-consistency invariant across the whole policy surface.
#[test]
fn solver_kinds_agree_for_every_model() {
    fn objectives<C: CostModel>(make: impl Fn() -> C) -> Vec<i64> {
        [
            SolverKind::Dual,
            SolverKind::RelaxationOnly,
            SolverKind::CostScalingOnly,
        ]
        .into_iter()
        .map(|kind| {
            let mut state = cluster(6, 2, 4);
            let mut f = Firmament::with_solver(
                make(),
                DualConfig {
                    kind,
                    ..Default::default()
                },
            );
            register(&state, &mut f);
            submit(&mut state, &mut f, 0, 9);
            f.schedule(&state).unwrap().objective
        })
        .collect()
    }
    for objs in [
        objectives(LoadSpreadingCostModel::new),
        objectives(|| QuincyCostModel::new(QuincyConfig::default())),
        objectives(NetworkAwareCostModel::new),
        objectives(OctopusCostModel::new),
    ] {
        assert_eq!(objs[0], objs[1]);
        assert_eq!(objs[1], objs[2]);
    }
}

/// A custom model with a gang requirement proves the API's extensibility:
/// even though unscheduled flow is free, the gang constraint forces the
/// job's minimum through machines.
struct GangModel;

impl CostModel for GangModel {
    fn name(&self) -> &'static str {
        "gang-test"
    }
    fn task_unscheduled_cost(&self, _: &ClusterState, _: &Task) -> i64 {
        0
    }
    fn task_arcs(&self, _: &ClusterState, _: &Task) -> Vec<(firmament::policies::ArcTarget, i64)> {
        vec![(firmament::policies::ArcTarget::Aggregate(0), 1)]
    }
    fn aggregate_arc(
        &self,
        _: &ClusterState,
        _: firmament::policies::AggregateId,
        machine: &firmament::cluster::Machine,
    ) -> Option<firmament::policies::ArcSpec> {
        Some(firmament::policies::ArcSpec {
            capacity: machine.slots as i64,
            cost: 100,
        })
    }
    fn job_gang_minimum(&self, _: &ClusterState, _: &Job) -> i64 {
        3
    }
}

#[test]
fn gang_minimum_forces_placements() {
    let mut state = cluster(4, 2, 4);
    let mut f = Firmament::new(GangModel);
    register(&state, &mut f);
    submit(&mut state, &mut f, 0, 5);
    let o = f.schedule(&state).unwrap();
    // Placing costs 100+ per task while unscheduled is free, so without
    // the gang floor the solver would place nothing.
    assert!(
        o.placed_tasks >= 3,
        "gang minimum of 3 must force ≥3 placements, got {}",
        o.placed_tasks
    );
    assert!(
        o.placed_tasks < 5,
        "free unscheduled flow keeps the rest waiting"
    );
}
