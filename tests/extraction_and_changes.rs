//! Integration tests spanning flow, mcmf, and core: placement extraction
//! agrees with the flow for every solver, and the Table 3 change analysis
//! predicts incremental-solver behaviour.
//!
//! Property-style cases derive their parameters from the workspace's own
//! deterministic generator (`XorShift64`), so failures reproduce exactly.

use firmament::core::{extract_placements, Placement};
use firmament::flow::changes::{arc_change_effect, ArcChangeAnalysis, ReoptEffect};
use firmament::flow::testgen::{scheduling_instance, InstanceSpec, XorShift64};
use firmament::mcmf::{cost_scaling, relaxation, ssp, verify, SolveOptions};

#[test]
fn extraction_identical_across_solvers() {
    // Different optimal solutions may exist, but the per-machine placement
    // counts implied by any optimal flow of the same graph must cost the
    // same; here we check extraction consistency per solver.
    let spec = InstanceSpec {
        tasks: 40,
        machines: 10,
        slots_per_machine: 4,
        ..InstanceSpec::default()
    };
    for (name, solve) in [
        (
            "ssp",
            &(|g: &mut firmament::flow::FlowGraph| {
                ssp::solve(g, &SolveOptions::unlimited()).unwrap();
            }) as &dyn Fn(&mut firmament::flow::FlowGraph),
        ),
        ("relaxation", &|g| {
            relaxation::solve(g, &SolveOptions::unlimited()).unwrap();
        }),
        ("cost_scaling", &|g| {
            cost_scaling::solve(g, &SolveOptions::unlimited()).unwrap();
        }),
    ] {
        let mut inst = scheduling_instance(3, &spec);
        solve(&mut inst.graph);
        let placements = extract_placements(&inst.graph);
        assert_eq!(placements.len(), 40, "{name}");
        let placed = placements
            .values()
            .filter(|p| matches!(p, Placement::OnMachine(_)))
            .count();
        // 10 machines × 4 slots = 40 slots ≥ 40 tasks, and placing is far
        // cheaper than the unscheduled cost, so everything places.
        assert_eq!(placed, 40, "{name}");
    }
}

/// Table 3 analysis matches observed behaviour: applying a change the
/// analysis calls "green" must leave the solved flow optimal.
#[test]
fn prop_green_changes_preserve_optimality() {
    let mut rng = XorShift64::new(0x7AB1E3);
    for case in 0..32 {
        let seed = rng.below(2000);
        let arc_pick = rng.below(500) as usize;
        let delta = 1 + rng.below(59) as i64;
        let increase = rng.below(2) == 1;
        let spec = InstanceSpec {
            tasks: 25,
            machines: 8,
            ..InstanceSpec::default()
        };
        let mut inst = scheduling_instance(seed, &spec);
        relaxation::solve(&mut inst.graph, &SolveOptions::unlimited()).unwrap();
        let potentials = match verify::find_potentials(&inst.graph) {
            verify::OptimalityCheck::Optimal { potentials } => potentials,
            _ => panic!("solved flow must be optimal"),
        };
        let arcs: Vec<_> = inst.graph.arc_ids().collect();
        let a = arcs[arc_pick % arcs.len()];
        let rc = verify::reduced_cost(&inst.graph, &potentials, a);
        let old_cost = inst.graph.cost(a);
        let new_cost = if increase {
            old_cost + delta
        } else {
            (old_cost - delta).max(0)
        };
        let analysis = ArcChangeAnalysis {
            reduced_cost_before: rc,
            reduced_cost_after: rc + (new_cost - old_cost),
            flow: inst.graph.flow(a),
            capacity_before: inst.graph.capacity(a),
            capacity_after: inst.graph.capacity(a),
        };
        let effect = arc_change_effect(&analysis);
        inst.graph.set_arc_cost(a, new_cost).unwrap();
        if effect == ReoptEffect::StaysValid {
            assert!(
                verify::is_optimal(&inst.graph),
                "case {case} (seed {seed}): green change broke optimality (rc={rc}, Δ={})",
                new_cost - old_cost
            );
        }
    }
}

/// Builds a `depth`-level aggregator chain: `tasks` task nodes → X →
/// A_1 → … → A_{depth−1} → machines → sink, solves it, and returns the
/// solved graph. Every level has capacity exactly `tasks`, so all flow
/// must traverse the full chain.
fn deep_chain(tasks: usize, machines: usize, depth: usize) -> firmament::flow::FlowGraph {
    use firmament::flow::{FlowGraph, NodeKind};
    let mut g = FlowGraph::new();
    let task_nodes: Vec<_> = (0..tasks)
        .map(|i| g.add_node(NodeKind::Task { task: i as u64 }, 1))
        .collect();
    let mut levels = vec![g.add_node(NodeKind::ClusterAggregator, 0)];
    for l in 1..depth {
        levels.push(g.add_node(NodeKind::Other { tag: l as u64 }, 0));
    }
    let machine_nodes: Vec<_> = (0..machines)
        .map(|m| g.add_node(NodeKind::Machine { machine: m as u64 }, 0))
        .collect();
    let sink = g.add_node(NodeKind::Sink, -(tasks as i64));
    for (i, &t) in task_nodes.iter().enumerate() {
        g.add_arc(t, levels[0], 1, 1 + i as i64).unwrap();
    }
    for w in levels.windows(2) {
        g.add_arc(w[0], w[1], tasks as i64, 2).unwrap();
    }
    let per_machine = tasks.div_ceil(machines) as i64;
    for (m, &mn) in machine_nodes.iter().enumerate() {
        g.add_arc(*levels.last().unwrap(), mn, per_machine, m as i64)
            .unwrap();
        g.add_arc(mn, sink, per_machine, 0).unwrap();
    }
    ssp::solve(&mut g, &SolveOptions::unlimited()).unwrap();
    g
}

/// Placements decompose through arbitrary aggregator depth: a chain of 2,
/// 3, and 5 aggregator levels between tasks and machines extracts every
/// task, with per-machine counts equal to the machine → sink flow and
/// flow conserved at every intermediate level.
#[test]
fn extraction_decomposes_through_arbitrary_aggregator_depth() {
    for depth in [2usize, 3, 5] {
        let g = deep_chain(12, 4, depth);
        let placements = extract_placements(&g);
        assert_eq!(placements.len(), 12, "depth {depth}");
        let placed: Vec<u64> = placements
            .values()
            .filter_map(|p| match p {
                Placement::OnMachine(m) => Some(*m),
                Placement::Unscheduled => None,
            })
            .collect();
        assert_eq!(placed.len(), 12, "depth {depth}: everything places");
        // Per-machine counts equal the machine→sink flow.
        use std::collections::HashMap;
        let mut counts: HashMap<u64, i64> = HashMap::new();
        for m in &placed {
            *counts.entry(*m).or_insert(0) += 1;
        }
        for n in g.node_ids() {
            use firmament::flow::NodeKind;
            match g.kind(n) {
                NodeKind::Machine { machine } => {
                    let outflow: i64 = g
                        .adj(n)
                        .iter()
                        .copied()
                        .filter(|a| a.is_forward())
                        .map(|a| g.flow(a))
                        .sum();
                    assert_eq!(
                        counts.get(&machine).copied().unwrap_or(0),
                        outflow,
                        "depth {depth} machine {machine}"
                    );
                }
                NodeKind::ClusterAggregator | NodeKind::Other { .. } => {
                    let mut inflow = 0i64;
                    let mut outflow = 0i64;
                    for &a in g.adj(n) {
                        let f = g.flow(a.forward());
                        if a.is_forward() {
                            outflow += f;
                        } else {
                            inflow += f;
                        }
                    }
                    assert_eq!(inflow, outflow, "depth {depth}: level unbalanced");
                    assert_eq!(inflow, 12, "depth {depth}: all flow crosses each level");
                }
                _ => {}
            }
        }
    }
}

/// Extraction accounts for exactly the machine→sink flow.
#[test]
fn prop_extraction_matches_flow() {
    let mut rng = XorShift64::new(0xE17AC7);
    for case in 0..32 {
        let seed = rng.below(3000);
        let spec = InstanceSpec {
            tasks: 30,
            machines: 8,
            ..InstanceSpec::default()
        };
        let mut inst = scheduling_instance(seed, &spec);
        cost_scaling::solve(&mut inst.graph, &SolveOptions::unlimited()).unwrap();
        let placements = extract_placements(&inst.graph);
        let placed = placements
            .values()
            .filter(|p| matches!(p, Placement::OnMachine(_)))
            .count() as i64;
        let machine_outflow: i64 = inst
            .machines
            .iter()
            .map(|&m| {
                inst.graph
                    .adj(m)
                    .iter()
                    .copied()
                    .filter(|&a| a.is_forward())
                    .map(|a| inst.graph.flow(a))
                    .sum::<i64>()
            })
            .sum();
        assert_eq!(placed, machine_outflow, "case {case} (seed {seed})");
    }
}
