//! Integration tests spanning flow, mcmf, and core: placement extraction
//! agrees with the flow for every solver, and the Table 3 change analysis
//! predicts incremental-solver behaviour.
//!
//! Property-style cases derive their parameters from the workspace's own
//! deterministic generator (`XorShift64`), so failures reproduce exactly.

use firmament::core::{extract_placements, Placement};
use firmament::flow::changes::{arc_change_effect, ArcChangeAnalysis, ReoptEffect};
use firmament::flow::testgen::{scheduling_instance, InstanceSpec, XorShift64};
use firmament::mcmf::{cost_scaling, relaxation, ssp, verify, SolveOptions};

#[test]
fn extraction_identical_across_solvers() {
    // Different optimal solutions may exist, but the per-machine placement
    // counts implied by any optimal flow of the same graph must cost the
    // same; here we check extraction consistency per solver.
    let spec = InstanceSpec {
        tasks: 40,
        machines: 10,
        slots_per_machine: 4,
        ..InstanceSpec::default()
    };
    for (name, solve) in [
        (
            "ssp",
            &(|g: &mut firmament::flow::FlowGraph| {
                ssp::solve(g, &SolveOptions::unlimited()).unwrap();
            }) as &dyn Fn(&mut firmament::flow::FlowGraph),
        ),
        ("relaxation", &|g| {
            relaxation::solve(g, &SolveOptions::unlimited()).unwrap();
        }),
        ("cost_scaling", &|g| {
            cost_scaling::solve(g, &SolveOptions::unlimited()).unwrap();
        }),
    ] {
        let mut inst = scheduling_instance(3, &spec);
        solve(&mut inst.graph);
        let placements = extract_placements(&inst.graph);
        assert_eq!(placements.len(), 40, "{name}");
        let placed = placements
            .values()
            .filter(|p| matches!(p, Placement::OnMachine(_)))
            .count();
        // 10 machines × 4 slots = 40 slots ≥ 40 tasks, and placing is far
        // cheaper than the unscheduled cost, so everything places.
        assert_eq!(placed, 40, "{name}");
    }
}

/// Table 3 analysis matches observed behaviour: applying a change the
/// analysis calls "green" must leave the solved flow optimal.
#[test]
fn prop_green_changes_preserve_optimality() {
    let mut rng = XorShift64::new(0x7AB1E3);
    for case in 0..32 {
        let seed = rng.below(2000);
        let arc_pick = rng.below(500) as usize;
        let delta = 1 + rng.below(59) as i64;
        let increase = rng.below(2) == 1;
        let spec = InstanceSpec {
            tasks: 25,
            machines: 8,
            ..InstanceSpec::default()
        };
        let mut inst = scheduling_instance(seed, &spec);
        relaxation::solve(&mut inst.graph, &SolveOptions::unlimited()).unwrap();
        let potentials = match verify::find_potentials(&inst.graph) {
            verify::OptimalityCheck::Optimal { potentials } => potentials,
            _ => panic!("solved flow must be optimal"),
        };
        let arcs: Vec<_> = inst.graph.arc_ids().collect();
        let a = arcs[arc_pick % arcs.len()];
        let rc = verify::reduced_cost(&inst.graph, &potentials, a);
        let old_cost = inst.graph.cost(a);
        let new_cost = if increase {
            old_cost + delta
        } else {
            (old_cost - delta).max(0)
        };
        let analysis = ArcChangeAnalysis {
            reduced_cost_before: rc,
            reduced_cost_after: rc + (new_cost - old_cost),
            flow: inst.graph.flow(a),
            capacity_before: inst.graph.capacity(a),
            capacity_after: inst.graph.capacity(a),
        };
        let effect = arc_change_effect(&analysis);
        inst.graph.set_arc_cost(a, new_cost).unwrap();
        if effect == ReoptEffect::StaysValid {
            assert!(
                verify::is_optimal(&inst.graph),
                "case {case} (seed {seed}): green change broke optimality (rc={rc}, Δ={})",
                new_cost - old_cost
            );
        }
    }
}

/// Extraction accounts for exactly the machine→sink flow.
#[test]
fn prop_extraction_matches_flow() {
    let mut rng = XorShift64::new(0xE17AC7);
    for case in 0..32 {
        let seed = rng.below(3000);
        let spec = InstanceSpec {
            tasks: 30,
            machines: 8,
            ..InstanceSpec::default()
        };
        let mut inst = scheduling_instance(seed, &spec);
        cost_scaling::solve(&mut inst.graph, &SolveOptions::unlimited()).unwrap();
        let placements = extract_placements(&inst.graph);
        let placed = placements
            .values()
            .filter(|p| matches!(p, Placement::OnMachine(_)))
            .count() as i64;
        let machine_outflow: i64 = inst
            .machines
            .iter()
            .map(|&m| {
                inst.graph
                    .adj(m)
                    .iter()
                    .copied()
                    .filter(|&a| a.is_forward())
                    .map(|a| inst.graph.flow(a))
                    .sum::<i64>()
            })
            .sum();
        assert_eq!(placed, machine_outflow, "case {case} (seed {seed})");
    }
}
