//! Differential graph-refresh fuzzing: the incrementally maintained flow
//! network must stay semantically identical to a from-scratch rebuild.
//!
//! The `FlowGraphManager` applies cluster events as graph *deltas* and
//! refreshes only dirty nodes (§6.3) — dozens of code paths that can
//! silently diverge from the declarative [`CostModel`] intent, especially
//! now that EC→EC hierarchy arcs multiply the refresh surface. Each test
//! drives one cost model through 50 seeded random event scripts (machine
//! add/remove, job submission, task placement/completion/preemption, clock
//! advance) and, after *every* refresh round, rebuilds the graph from
//! scratch out of current cluster state and asserts the two are identical
//! under a canonical form:
//!
//! - same node kinds (aggregate GC must leave exactly the reachable set),
//! - same per-kind supplies,
//! - same positive-capacity arcs with equal capacity and cost (parked
//!   capacity-0 arcs are semantic no-ops, so both sides drop them).
//!
//! The suite also carries the **delta-replay oracle**: after every round,
//! the manager's recorded `GraphDelta` batch is replayed onto a snapshot
//! of the previous round's graph, and the replayed graph must reproduce
//! the live graph *exactly* — slot-identical ids, kinds, supplies, arc
//! endpoints, capacities, and costs (not flow, which the log does not
//! carry). This pins the typed change feed the incremental solver
//! warm-starts from: a batch that under- or over-reports a change would
//! silently desynchronize the solver's warm state.
//!
//! Failures print the model, seed, and round, so every divergence is a
//! deterministic one-line reproduction.

use firmament::cluster::{
    ClusterEvent, ClusterState, Job, JobClass, Machine, Task, TaskState, TopologySpec,
};
use firmament::core::FlowGraphManager;
use firmament::flow::testgen::XorShift64;
use firmament::flow::{ArcId, FlowGraph, NodeId, NodeKind};
use firmament::policies::{
    AggregateId, ArcBundle, ArcSpec, ArcTarget, CostModel, HierarchicalTopologyCostModel,
    LoadSpreadingCostModel, NetworkAwareCostModel, OctopusCostModel, QuincyConfig, QuincyCostModel,
};

const SCRIPTS_PER_MODEL: u64 = 50;
/// The convex-wrapper matrix re-runs every model with bundle re-pricing
/// and segment-count churn layered on; fewer scripts keep the doubled
/// matrix inside the CI budget.
const SCRIPTS_PER_WRAPPED_MODEL: u64 = 30;
/// The bucketed-wrapper matrix (a third full-model arm) gets its own
/// smaller budget for the same reason.
const SCRIPTS_PER_BUCKETED_MODEL: u64 = 20;
const ROUNDS_PER_SCRIPT: usize = 15;

/// Wraps any cost model to exercise the **bundle event alphabet** the
/// plain models don't reach on their own:
///
/// - **Segment-count-changing events**: every aggregate → machine bundle
///   becomes a ladder whose segment *count* tracks the machine's free
///   slots (`1 + free % 3`) — so task placements/completions/preemptions
///   (which dirty the machine) grow and shrink declared ladders, driving
///   the manager's park/revive/append slot logic under the static
///   contract and add/remove under the dynamic one.
/// - **Bundle re-pricing events**: waiting-task bundles get a cost term
///   derived from the virtual clock and [`CostModel::dynamic_task_arcs`]
///   is enabled, so every `Tick` event re-prices the cached preference
///   slots in place (the Execution-Templates patch path). EC→EC bundles
///   are split into two-segment convex ladders, re-priced through the
///   dirty-aggregate sweep.
///
/// All wrapper outputs are pure functions of `ClusterState` plus the
/// inner model's declarations, so the incremental-vs-rebuild oracle
/// stays sound: any divergence is a manager bug, not wrapper noise.
struct ConvexFuzzWrapper<C: CostModel> {
    inner: C,
}

/// A convex ladder over `total` capacity with `count` segments starting
/// at `base` cost and rising by `step`: first segment takes the bulk,
/// the tail segments capacity 1 each.
fn fuzz_ladder(total: i64, count: i64, base: i64, step: i64) -> ArcBundle {
    let count = count.clamp(1, total.max(1));
    let mut segments = Vec::with_capacity(count as usize);
    let head = (total - (count - 1)).max(0);
    for j in 0..count {
        segments.push(ArcSpec {
            capacity: if j == 0 { head } else { 1 },
            cost: base + j * step,
        });
    }
    ArcBundle::from_segments(segments)
}

impl<C: CostModel> CostModel for ConvexFuzzWrapper<C> {
    fn name(&self) -> &'static str {
        "convex-fuzz-wrapper"
    }
    fn task_unscheduled_cost(&self, state: &ClusterState, task: &Task) -> i64 {
        self.inner.task_unscheduled_cost(state, task)
    }
    fn task_arcs(&self, state: &ClusterState, task: &Task) -> Vec<(ArcTarget, ArcBundle)> {
        // Clock-dependent re-pricing on top of the inner declaration:
        // legal only because dynamic_task_arcs() is true below.
        let drift = (state.now / 1_000_000 % 7) as i64;
        self.inner
            .task_arcs(state, task)
            .into_iter()
            .map(|(target, bundle)| {
                let base = bundle.segments().first().map(|s| s.cost).unwrap_or(0);
                (target, ArcBundle::cost(base + drift))
            })
            .collect()
    }
    fn aggregate_arc(
        &self,
        state: &ClusterState,
        aggregate: AggregateId,
        machine: &Machine,
    ) -> Option<ArcBundle> {
        let inner = self.inner.aggregate_arc(state, aggregate, machine)?;
        let total = inner.total_capacity();
        let base = inner.segments().first().map(|s| s.cost).unwrap_or(0);
        // Segment count follows the machine's free slots — it changes
        // exactly when an event dirties the machine, so static models
        // stay refresh-consistent while the ladder grows and shrinks.
        let count = 1 + machine.free_slots() as i64 % 3;
        Some(fuzz_ladder(total, count, base, 1 + machine.id as i64 % 2))
    }
    fn aggregate_to_aggregate(
        &self,
        state: &ClusterState,
        aggregate: AggregateId,
    ) -> Vec<(AggregateId, ArcBundle)> {
        self.inner
            .aggregate_to_aggregate(state, aggregate)
            .into_iter()
            .map(|(child, bundle)| {
                let total = bundle.total_capacity();
                let base = bundle.segments().first().map(|s| s.cost).unwrap_or(0);
                (child, fuzz_ladder(total, 2, base, 1))
            })
            .collect()
    }
    fn aggregate_kind(&self, aggregate: AggregateId) -> NodeKind {
        self.inner.aggregate_kind(aggregate)
    }
    fn running_arc_cost(&self, state: &ClusterState, task: &Task, machine: u64) -> i64 {
        self.inner.running_arc_cost(state, task, machine)
    }
    fn dynamic_aggregate_arcs(&self) -> bool {
        self.inner.dynamic_aggregate_arcs()
    }
    fn dynamic_task_arcs(&self) -> bool {
        true
    }
    fn task_arcs_machine_local(&self) -> bool {
        self.inner.task_arcs_machine_local()
    }
    fn job_gang_minimum(&self, state: &ClusterState, job: &Job) -> i64 {
        self.inner.job_gang_minimum(state, job)
    }
}

/// Wraps any cost model to exercise **capacity-bucketed ladders under
/// slot-count churn** — the [`ArcBundle::bucketed`] counterpart of
/// [`ConvexFuzzWrapper`]:
///
/// - every aggregate → machine bundle becomes a *bucketed* ladder whose
///   slot count tracks the machine's free slots (`total − free % 3`), so
///   placements/completions/preemptions move the **bucket boundaries
///   themselves**: segment capacities re-size, the tail parks/revives,
///   and the manager's in-place re-pricing path must keep the
///   incremental graph identical to a from-scratch rebuild;
/// - EC→EC bundles are bucketed over their declared capacity;
/// - waiting-task bundles re-price with the clock
///   ([`CostModel::dynamic_task_arcs`]), as in the convex wrapper.
///
/// All outputs are pure functions of `ClusterState` plus the inner
/// model's declarations, so the differential oracle stays sound.
struct BucketedFuzzWrapper<C: CostModel> {
    inner: C,
}

impl<C: CostModel> CostModel for BucketedFuzzWrapper<C> {
    fn name(&self) -> &'static str {
        "bucketed-fuzz-wrapper"
    }
    fn task_unscheduled_cost(&self, state: &ClusterState, task: &Task) -> i64 {
        self.inner.task_unscheduled_cost(state, task)
    }
    fn task_arcs(&self, state: &ClusterState, task: &Task) -> Vec<(ArcTarget, ArcBundle)> {
        let drift = (state.now / 1_000_000 % 5) as i64;
        self.inner
            .task_arcs(state, task)
            .into_iter()
            .map(|(target, bundle)| {
                let base = bundle.segments().first().map(|s| s.cost).unwrap_or(0);
                (target, ArcBundle::cost(base + drift))
            })
            .collect()
    }
    fn aggregate_arc(
        &self,
        state: &ClusterState,
        aggregate: AggregateId,
        machine: &Machine,
    ) -> Option<ArcBundle> {
        let inner = self.inner.aggregate_arc(state, aggregate, machine)?;
        let total = inner.total_capacity();
        let base = inner.segments().first().map(|s| s.cost).unwrap_or(0);
        // The bucketed slot count follows the machine's free slots, so
        // events that change occupancy move the bucket boundaries: a
        // shrink re-sizes buckets and parks the tail, a grow revives it.
        let slots = (total - machine.free_slots() as i64 % 3).max(1);
        let step = 1 + machine.id as i64 % 2;
        Some(ArcBundle::bucketed(slots, |j| base + j * step))
    }
    fn aggregate_to_aggregate(
        &self,
        state: &ClusterState,
        aggregate: AggregateId,
    ) -> Vec<(AggregateId, ArcBundle)> {
        self.inner
            .aggregate_to_aggregate(state, aggregate)
            .into_iter()
            .map(|(child, bundle)| {
                let total = bundle.total_capacity();
                let base = bundle.segments().first().map(|s| s.cost).unwrap_or(0);
                (child, ArcBundle::bucketed(total.max(1), |j| base + j))
            })
            .collect()
    }
    fn aggregate_kind(&self, aggregate: AggregateId) -> NodeKind {
        self.inner.aggregate_kind(aggregate)
    }
    fn running_arc_cost(&self, state: &ClusterState, task: &Task, machine: u64) -> i64 {
        self.inner.running_arc_cost(state, task, machine)
    }
    fn dynamic_aggregate_arcs(&self) -> bool {
        self.inner.dynamic_aggregate_arcs()
    }
    fn dynamic_task_arcs(&self) -> bool {
        true
    }
    fn task_arcs_machine_local(&self) -> bool {
        self.inner.task_arcs_machine_local()
    }
    fn job_gang_minimum(&self, state: &ClusterState, job: &Job) -> i64 {
        self.inner.job_gang_minimum(state, job)
    }
}

/// Canonical, id-independent form of a scheduling flow network: sorted
/// node kinds, sorted nonzero supplies by kind, and sorted
/// positive-capacity forward arcs as `(src kind, dst kind, cap, cost)`.
type Canonical = (
    Vec<String>,
    Vec<(String, i64)>,
    Vec<(String, String, i64, i64)>,
);

fn canonical(g: &FlowGraph) -> Canonical {
    let mut nodes: Vec<String> = g.node_ids().map(|n| g.kind(n).to_string()).collect();
    nodes.sort();
    let mut supplies: Vec<(String, i64)> = g
        .node_ids()
        .filter(|&n| g.supply(n) != 0)
        .map(|n| (g.kind(n).to_string(), g.supply(n)))
        .collect();
    supplies.sort();
    let mut arcs: Vec<(String, String, i64, i64)> = g
        .arc_ids()
        .filter(|&a| g.capacity(a) > 0)
        .map(|a| {
            (
                g.kind(g.src(a)).to_string(),
                g.kind(g.dst(a)).to_string(),
                g.capacity(a),
                g.cost(a),
            )
        })
        .collect();
    arcs.sort();
    (nodes, supplies, arcs)
}

/// Builds a manager from scratch out of the current cluster state, as if
/// the scheduler had just started: machines first, then every job's
/// incomplete tasks, then the placements of running tasks, then a refresh.
fn rebuild<C: CostModel>(model: &C, state: &ClusterState) -> FlowGraphManager {
    let mut mgr = FlowGraphManager::new();
    let mut machines: Vec<Machine> = state.machines.values().cloned().collect();
    machines.sort_by_key(|m| m.id);
    for m in machines {
        mgr.apply_event(model, state, &ClusterEvent::MachineAdded { machine: m })
            .expect("rebuild: machine");
    }
    let mut jobs: Vec<&Job> = state.jobs.values().collect();
    jobs.sort_by_key(|j| j.id);
    for job in jobs {
        let tasks: Vec<Task> = job
            .tasks
            .iter()
            .filter_map(|t| state.tasks.get(t))
            .filter(|t| t.state != TaskState::Completed)
            .cloned()
            .collect();
        if tasks.is_empty() {
            continue;
        }
        mgr.apply_event(
            model,
            state,
            &ClusterEvent::JobSubmitted {
                job: job.clone(),
                tasks,
            },
        )
        .expect("rebuild: job");
    }
    let mut running: Vec<&Task> = state.running_tasks().collect();
    running.sort_by_key(|t| t.id);
    for t in running {
        mgr.apply_event(
            model,
            state,
            &ClusterEvent::TaskPlaced {
                task: t.id,
                machine: t.machine.expect("running task has a machine"),
                now: state.now,
            },
        )
        .expect("rebuild: placement");
    }
    mgr.refresh(model, state).expect("rebuild: refresh");
    mgr
}

/// The delta-replay oracle: slot-exact structural equality between the
/// replayed snapshot and the live graph. Bounds may differ only by
/// trailing dead slots (entities that cancelled within the batch still
/// grew the live arena).
fn assert_replay_matches(
    model: &str,
    seed: u64,
    round: usize,
    replayed: &FlowGraph,
    live: &FlowGraph,
) {
    for i in 0..live.node_bound().max(replayed.node_bound()) {
        let n = NodeId::from_index(i);
        assert_eq!(
            replayed.node_alive(n),
            live.node_alive(n),
            "{model} seed {seed} round {round}: replay node-alive diverged at {n}"
        );
        if live.node_alive(n) {
            assert_eq!(
                (replayed.kind(n), replayed.supply(n)),
                (live.kind(n), live.supply(n)),
                "{model} seed {seed} round {round}: replay node state diverged at {n}"
            );
        }
    }
    for i in (0..live.arc_bound().max(replayed.arc_bound())).step_by(2) {
        let a = ArcId::from_index(i);
        assert_eq!(
            replayed.arc_alive(a),
            live.arc_alive(a),
            "{model} seed {seed} round {round}: replay arc-alive diverged at {a}"
        );
        if live.arc_alive(a) {
            assert_eq!(
                (
                    replayed.src(a),
                    replayed.dst(a),
                    replayed.capacity(a),
                    replayed.cost(a)
                ),
                (live.src(a), live.dst(a), live.capacity(a), live.cost(a)),
                "{model} seed {seed} round {round}: replay arc state diverged at {a}"
            );
        }
    }
}

/// Id allocation for fuzz-generated entities. Removed machine ids are
/// remembered so some additions *reuse* them: waiting arc sets are
/// re-derived on every machine-set change, so a re-added id must converge
/// to exactly what a from-scratch build declares.
struct Ids {
    next_task: u64,
    next_job: u64,
    next_machine: u64,
    next_rack: u32,
    removed_machines: Vec<u64>,
}

fn apply_both<C: CostModel>(
    state: &mut ClusterState,
    mgr: &mut FlowGraphManager,
    model: &C,
    ev: &ClusterEvent,
) {
    state.apply(ev);
    mgr.apply_event(model, state, ev)
        .unwrap_or_else(|e| panic!("{}: event {ev:?} failed: {e}", model.name()));
}

fn random_event<C: CostModel>(
    rng: &mut XorShift64,
    ids: &mut Ids,
    state: &mut ClusterState,
    mgr: &mut FlowGraphManager,
    model: &C,
) {
    match rng.below(100) {
        // Submit a small job; some tasks carry input blocks (exercising
        // locality preference arcs) and bandwidth requests (request
        // classes).
        0..=29 => {
            let job_id = ids.next_job;
            ids.next_job += 1;
            let n = 1 + rng.below(4) as usize;
            let job = Job::new(job_id, JobClass::Batch, 0, state.now);
            let mut tasks = Vec::with_capacity(n);
            for _ in 0..n {
                let tid = ids.next_task;
                ids.next_task += 1;
                let mut t = Task::new(tid, job_id, state.now, 1_000_000 + rng.below(60_000_000));
                t.request.net_mbps = 100 + rng.below(1900);
                if rng.below(2) == 0 && !state.machines.is_empty() {
                    let mut holders: Vec<u64> = state.machines.keys().copied().collect();
                    holders.sort_unstable();
                    let k = 1 + rng.below(3.min(holders.len() as u64)) as usize;
                    let mut picked = Vec::with_capacity(k);
                    for _ in 0..k {
                        picked.push(holders[rng.below(holders.len() as u64) as usize]);
                    }
                    t.input_blocks = vec![state.blocks.place_block(picked)];
                    t.input_bytes = 1_000_000_000 + rng.below(3_000_000_000);
                }
                tasks.push(t);
            }
            apply_both(
                state,
                mgr,
                model,
                &ClusterEvent::JobSubmitted { job, tasks },
            );
        }
        // Place a waiting task on a machine with a free slot (synthetic
        // scheduler decision — the manager must cope with any placement).
        30..=49 => {
            let mut waiting: Vec<u64> = state.waiting_tasks().map(|t| t.id).collect();
            waiting.sort_unstable();
            let mut free: Vec<u64> = state
                .machines
                .values()
                .filter(|m| m.has_free_slot())
                .map(|m| m.id)
                .collect();
            free.sort_unstable();
            if waiting.is_empty() || free.is_empty() {
                return;
            }
            let task = waiting[rng.below(waiting.len() as u64) as usize];
            let machine = free[rng.below(free.len() as u64) as usize];
            apply_both(
                state,
                mgr,
                model,
                &ClusterEvent::TaskPlaced {
                    task,
                    machine,
                    now: state.now,
                },
            );
        }
        // Complete a running task.
        50..=64 => {
            let mut running: Vec<u64> = state.running_tasks().map(|t| t.id).collect();
            running.sort_unstable();
            if running.is_empty() {
                return;
            }
            let task = running[rng.below(running.len() as u64) as usize];
            apply_both(
                state,
                mgr,
                model,
                &ClusterEvent::TaskCompleted {
                    task,
                    now: state.now,
                },
            );
        }
        // Preempt (≈ fail) a running task back into the waiting pool.
        65..=74 => {
            let mut running: Vec<u64> = state.running_tasks().map(|t| t.id).collect();
            running.sort_unstable();
            if running.is_empty() {
                return;
            }
            let task = running[rng.below(running.len() as u64) as usize];
            apply_both(
                state,
                mgr,
                model,
                &ClusterEvent::TaskPreempted {
                    task,
                    now: state.now,
                },
            );
        }
        // Advance the virtual clock (drifts every waiting cost).
        75..=84 => {
            let now = state.now + 1_000_000 * (1 + rng.below(30));
            apply_both(state, mgr, model, &ClusterEvent::Tick { now });
        }
        // Add a machine — sometimes into a brand-new rack (growing the
        // hierarchy a level-0 aggregate must pick up on refresh),
        // sometimes reusing a previously removed id (waiting arc sets
        // must re-converge on the rebuilt declarations).
        85..=92 => {
            let id = if !ids.removed_machines.is_empty() && rng.below(3) == 0 {
                ids.removed_machines
                    .swap_remove(rng.below(ids.removed_machines.len() as u64) as usize)
            } else {
                ids.next_machine += 1;
                ids.next_machine - 1
            };
            let rack = if rng.below(2) == 0 || state.machines.is_empty() {
                ids.next_rack += 1;
                ids.next_rack
            } else {
                let mut racks: Vec<u32> = state.machines.values().map(|m| m.rack).collect();
                racks.sort_unstable();
                racks.dedup();
                racks[rng.below(racks.len() as u64) as usize]
            };
            let machine = Machine::new(id, rack, 1 + rng.below(3) as u32);
            apply_both(state, mgr, model, &ClusterEvent::MachineAdded { machine });
        }
        // Remove a machine, displacing whatever ran on it.
        _ => {
            if state.machines.len() <= 1 {
                return;
            }
            let mut ms: Vec<u64> = state.machines.keys().copied().collect();
            ms.sort_unstable();
            let machine = ms[rng.below(ms.len() as u64) as usize];
            ids.removed_machines.push(machine);
            apply_both(
                state,
                mgr,
                model,
                &ClusterEvent::MachineRemoved {
                    machine,
                    now: state.now,
                },
            );
        }
    }
}

/// One seeded script: a small cluster, `ROUNDS_PER_SCRIPT` rounds of 1–3
/// random events each, a refresh after every round, and a full
/// incremental-vs-rebuild comparison after every refresh.
fn run_script<C: CostModel>(model: &C, seed: u64) {
    let mut rng = XorShift64::new(seed);
    let mut state = ClusterState::with_topology(&TopologySpec {
        machines: 4 + rng.below(5) as usize,
        machines_per_rack: 2 + rng.below(2) as usize,
        slots_per_machine: 2,
    });
    let mut ids = Ids {
        next_task: 0,
        next_job: 0,
        next_machine: 1000,
        next_rack: 100,
        removed_machines: Vec::new(),
    };
    let mut mgr = FlowGraphManager::new();
    let mut machines: Vec<Machine> = state.machines.values().cloned().collect();
    machines.sort_by_key(|m| m.id);
    for m in machines {
        mgr.apply_event(model, &state, &ClusterEvent::MachineAdded { machine: m })
            .expect("initial machine");
    }
    // Delta-replay oracle state: drain the build-up batch, then snapshot.
    mgr.take_deltas();
    let mut snapshot = mgr.graph().clone();
    for round in 0..ROUNDS_PER_SCRIPT {
        let events = 1 + rng.below(3);
        for _ in 0..events {
            random_event(&mut rng, &mut ids, &mut state, &mut mgr, model);
        }
        mgr.refresh(model, &state)
            .unwrap_or_else(|e| panic!("{} seed {seed} round {round}: refresh: {e}", model.name()));
        // Replaying the round's recorded batch onto the previous round's
        // snapshot must reproduce the live graph exactly.
        let batch = mgr.take_deltas();
        batch
            .replay(&mut snapshot)
            .unwrap_or_else(|e| panic!("{} seed {seed} round {round}: replay: {e}", model.name()));
        assert_replay_matches(model.name(), seed, round, &snapshot, mgr.graph());
        let fresh = rebuild(model, &state);
        let inc = canonical(mgr.graph());
        let scratch = canonical(fresh.graph());
        assert_eq!(
            inc.0,
            scratch.0,
            "{} seed {seed} round {round}: node sets diverged",
            model.name()
        );
        assert_eq!(
            inc.1,
            scratch.1,
            "{} seed {seed} round {round}: supplies diverged",
            model.name()
        );
        assert_eq!(
            inc.2,
            scratch.2,
            "{} seed {seed} round {round}: arcs diverged",
            model.name()
        );
    }
}

fn run_model<C: CostModel>(make: impl Fn() -> C, salt: u64) {
    for i in 0..SCRIPTS_PER_MODEL {
        let model = make();
        run_script(&model, salt.wrapping_add(i * 0x9E37).max(1));
    }
}

/// The bundle-event matrix: every model re-fuzzed under the
/// [`ConvexFuzzWrapper`], which layers segment-count churn and clock-
/// driven bundle re-pricing (dynamic task arcs) onto the same scripts.
fn run_wrapped_model<C: CostModel>(make: impl Fn() -> C, salt: u64) {
    for i in 0..SCRIPTS_PER_WRAPPED_MODEL {
        let model = ConvexFuzzWrapper { inner: make() };
        run_script(&model, salt.wrapping_add(0xC0 + i * 0x9E37).max(1));
    }
}

/// The bucketed matrix: every model re-fuzzed under the
/// [`BucketedFuzzWrapper`], whose bucketed slot counts churn with machine
/// occupancy so bucket boundaries drift across refreshes.
fn run_bucketed_model<C: CostModel>(make: impl Fn() -> C, salt: u64) {
    for i in 0..SCRIPTS_PER_BUCKETED_MODEL {
        let model = BucketedFuzzWrapper { inner: make() };
        run_script(&model, salt.wrapping_add(0xB0C4 + i * 0x9E37).max(1));
    }
}

#[test]
fn differential_load_spreading() {
    run_model(LoadSpreadingCostModel::new, 0x10AD);
}

#[test]
fn differential_quincy() {
    run_model(|| QuincyCostModel::new(QuincyConfig::default()), 0x0116C7);
}

#[test]
fn differential_octopus() {
    run_model(OctopusCostModel::new, 0x0C107);
}

#[test]
fn differential_network_aware() {
    run_model(NetworkAwareCostModel::new, 0x6E7B);
}

#[test]
fn differential_hierarchy() {
    run_model(HierarchicalTopologyCostModel::new, 0x417AC);
}

#[test]
fn differential_convex_bundles_load_spreading() {
    run_wrapped_model(LoadSpreadingCostModel::new, 0x10AD);
}

#[test]
fn differential_convex_bundles_quincy() {
    run_wrapped_model(|| QuincyCostModel::new(QuincyConfig::default()), 0x0116C7);
}

#[test]
fn differential_convex_bundles_octopus() {
    run_wrapped_model(OctopusCostModel::new, 0x0C107);
}

#[test]
fn differential_convex_bundles_network_aware() {
    run_wrapped_model(NetworkAwareCostModel::new, 0x6E7B);
}

#[test]
fn differential_convex_bundles_hierarchy() {
    run_wrapped_model(HierarchicalTopologyCostModel::new, 0x417AC);
}

#[test]
fn differential_bucketed_load_spreading() {
    run_bucketed_model(LoadSpreadingCostModel::new, 0x10AD);
}

#[test]
fn differential_bucketed_quincy() {
    run_bucketed_model(|| QuincyCostModel::new(QuincyConfig::default()), 0x0116C7);
}

#[test]
fn differential_bucketed_octopus() {
    run_bucketed_model(OctopusCostModel::new, 0x0C107);
}

#[test]
fn differential_bucketed_network_aware() {
    run_bucketed_model(NetworkAwareCostModel::new, 0x6E7B);
}

#[test]
fn differential_bucketed_hierarchy() {
    run_bucketed_model(HierarchicalTopologyCostModel::new, 0x417AC);
}

/// The shipped bucketed model variants themselves (not just wrappers)
/// stay refresh-consistent: the `BundleShape::Bucketed` knob on every
/// load-based model runs a reduced script matrix.
#[test]
fn differential_bucketed_shipped_models() {
    use firmament::policies::BundleShape;
    for i in 0..SCRIPTS_PER_BUCKETED_MODEL {
        let seed = 0x5CA1Eu64.wrapping_add(i * 0x9E37).max(1);
        run_script(&LoadSpreadingCostModel::bucketed(), seed);
        run_script(&OctopusCostModel::bucketed(), seed);
        run_script(
            &HierarchicalTopologyCostModel::with_config(firmament::policies::TopologyConfig {
                shape: BundleShape::Bucketed,
                ..Default::default()
            }),
            seed,
        );
    }
}
