//! Integration test for the paper's headline quality claim: flow-based
//! scheduling with the network-aware policy beats task-by-task baselines
//! on tail response time under network contention (Fig 19).

use firmament::baselines::{SparrowScheduler, SwarmKitScheduler};
use firmament::sim::{run_testbed, TestbedConfig, TestbedScheduler};

fn config() -> TestbedConfig {
    TestbedConfig {
        tasks: 60,
        background: true,
        seed: 33,
        ..TestbedConfig::default()
    }
}

#[test]
fn firmament_beats_baselines_in_the_tail() {
    let mut firmament = run_testbed(&config(), TestbedScheduler::Firmament);
    let mut swarmkit = run_testbed(
        &config(),
        TestbedScheduler::Baseline(Box::new(SwarmKitScheduler)),
    );
    let mut sparrow = run_testbed(
        &config(),
        TestbedScheduler::Baseline(Box::new(SparrowScheduler::new(33))),
    );
    let f = firmament.percentile(99.0);
    let sw = swarmkit.percentile(99.0);
    let sp = sparrow.percentile(99.0);
    assert!(f <= sw, "firmament p99 {f:.1}s vs swarmkit {sw:.1}s");
    assert!(f <= sp, "firmament p99 {f:.1}s vs sparrow {sp:.1}s");
}

#[test]
fn isolation_is_the_lower_bound() {
    let mut idle = run_testbed(&config(), TestbedScheduler::Idle);
    let mut firmament = run_testbed(&config(), TestbedScheduler::Firmament);
    assert!(idle.percentile(50.0) <= firmament.percentile(50.0) + 1e-9);
}

#[test]
fn all_schedulers_finish_every_task() {
    for sched in [
        TestbedScheduler::Idle,
        TestbedScheduler::Firmament,
        TestbedScheduler::Baseline(Box::new(SwarmKitScheduler)),
    ] {
        let samples = run_testbed(&config(), sched);
        assert_eq!(samples.len(), config().tasks);
    }
}
