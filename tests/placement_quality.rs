//! Integration test for the paper's headline quality claim: flow-based
//! scheduling with the network-aware policy beats task-by-task baselines
//! on tail response time under network contention (Fig 19) — plus the
//! convex-bundle claim: load-based policies spread a burst within ONE
//! solver round (Quincy's convexity trick, ROADMAP item).

use firmament::baselines::{SparrowScheduler, SwarmKitScheduler};
use firmament::cluster::{ClusterEvent, ClusterState, Job, JobClass, Task, TopologySpec};
use firmament::core::{Firmament, SchedulingAction};
use firmament::policies::{CostModel, LoadSpreadingCostModel, OctopusCostModel};
use firmament::sim::{run_testbed, TestbedConfig, TestbedScheduler};

fn config() -> TestbedConfig {
    TestbedConfig {
        tasks: 60,
        background: true,
        seed: 33,
        ..TestbedConfig::default()
    }
}

#[test]
fn firmament_beats_baselines_in_the_tail() {
    let mut firmament = run_testbed(&config(), TestbedScheduler::Firmament);
    let mut swarmkit = run_testbed(
        &config(),
        TestbedScheduler::Baseline(Box::new(SwarmKitScheduler)),
    );
    let mut sparrow = run_testbed(
        &config(),
        TestbedScheduler::Baseline(Box::new(SparrowScheduler::new(33))),
    );
    let f = firmament.percentile(99.0);
    let sw = swarmkit.percentile(99.0);
    let sp = sparrow.percentile(99.0);
    assert!(f <= sw, "firmament p99 {f:.1}s vs swarmkit {sw:.1}s");
    assert!(f <= sp, "firmament p99 {f:.1}s vs sparrow {sp:.1}s");
}

#[test]
fn isolation_is_the_lower_bound() {
    let mut idle = run_testbed(&config(), TestbedScheduler::Idle);
    let mut firmament = run_testbed(&config(), TestbedScheduler::Firmament);
    assert!(idle.percentile(50.0) <= firmament.percentile(50.0) + 1e-9);
}

/// One-round burst spreading: `k·m` identical tasks over `m` idle
/// machines, a single `schedule()` call, per-machine load distribution
/// measured after applying the actions.
fn burst_loads<C: CostModel>(model: C, machines: usize, slots: u32, k: usize) -> Vec<usize> {
    let mut state = ClusterState::with_topology(&TopologySpec {
        machines,
        machines_per_rack: 4,
        slots_per_machine: slots,
    });
    let mut f = Firmament::new(model);
    let mut ms: Vec<_> = state.machines.values().cloned().collect();
    ms.sort_by_key(|m| m.id);
    for m in ms {
        f.handle_event(&state, &ClusterEvent::MachineAdded { machine: m })
            .unwrap();
    }
    let job = Job::new(0, JobClass::Batch, 0, 0);
    let tasks: Vec<Task> = (0..(k * machines) as u64)
        .map(|i| Task::new(i, 0, 0, 60_000_000))
        .collect();
    let ev = ClusterEvent::JobSubmitted { job, tasks };
    state.apply(&ev);
    f.handle_event(&state, &ev).unwrap();
    let outcome = f.schedule(&state).unwrap();
    for a in &outcome.actions {
        if let SchedulingAction::Place { task, machine } = a {
            let ev = ClusterEvent::TaskPlaced {
                task: *task,
                machine: *machine,
                now: 0,
            };
            state.apply(&ev);
            f.handle_event(&state, &ev).unwrap();
        }
    }
    state.machines.values().map(|m| m.running.len()).collect()
}

/// The tentpole claim: convex ladders make within-round spreading
/// *optimal*, so one solve of a burst lands ≤ ⌈k⌉+1 tasks per machine;
/// the uniform-cost variant packs machines full instead.
#[test]
fn convex_ladders_spread_a_burst_in_one_round() {
    let (m, slots, k) = (8, 6, 3);
    for loads in [
        burst_loads(LoadSpreadingCostModel::new(), m, slots, k),
        burst_loads(OctopusCostModel::new(), m, slots, k),
    ] {
        assert_eq!(loads.iter().sum::<usize>(), k * m, "everything placed");
        assert!(
            loads.iter().all(|&l| l <= k + 1),
            "convex model exceeded fair share + 1: {loads:?}"
        );
    }
    // Contrast: the pre-bundle uniform arcs give the solver no
    // within-round gradient, so the same burst skews.
    let uniform = burst_loads(LoadSpreadingCostModel::uniform(), m, slots, k);
    assert_eq!(uniform.iter().sum::<usize>(), k * m);
    assert!(
        uniform.iter().any(|&l| l > k + 1),
        "uniform-cost arcs unexpectedly spread within the round: {uniform:?}"
    );
}

#[test]
fn all_schedulers_finish_every_task() {
    for sched in [
        TestbedScheduler::Idle,
        TestbedScheduler::Firmament,
        TestbedScheduler::Baseline(Box::new(SwarmKitScheduler)),
    ] {
        let samples = run_testbed(&config(), sched);
        assert_eq!(samples.len(), config().tasks);
    }
}
