//! Cluster-scale regression suite: the bounds that gate every full-scale
//! figure (fig3/fig14), asserted by test so a change that silently
//! re-inflates the graph — or degrades bucketed placement quality — fails
//! the default `cargo test` tier, not just a bench run someone forgot.
//!
//! Two bound families, both over the `firmament_bench::scale` testbed:
//!
//! - **Graph size**: capacity-bucketed ladders hold aggregate → machine
//!   arcs at `O(m·log s)` — 12 slots means ≤ 5 segments per machine
//!   instead of 12, and the measured ladder-arc count of a trace-warmed
//!   cluster must sit under `machines × (⌈log₂ slots⌉ + 1)` for every
//!   shipped load-based policy.
//! - **Placement quality**: one-round bursts solved under `Bucketed`,
//!   canonicalized via `mcmf::canonical` and evaluated under the true
//!   per-slot marginal cost, must match the per-slot optimum *exactly*
//!   when the per-machine fair share lands on a bucket boundary and stay
//!   within one marginal step per task otherwise; per-machine spreading
//!   stays within `⌈k⌉ + 1` for per-slot and the next bucket boundary
//!   above `⌈k⌉` for bucketed.
//!
//! The CI `scale-smoke` job re-runs these bounds at a larger, release
//! scale through the `scale_regression` bench bin; the sizes here are
//! picked to stay fast in a debug build.

use firmament::policies::BundleShape;
use firmament_bench::scale::{
    bucket_ceiling, bucketed_segments_for, burst_quality, ladder_arc_bound, run_scale_point,
    ScalePointSpec, ScalePolicy,
};

/// 12 slots → ≤ 5 bucketed segments per machine (vs 12 per-slot), and the
/// bound is logarithmic across slot counts for every shipped policy.
#[test]
fn bucketed_segments_are_logarithmic_in_slots() {
    for policy in ScalePolicy::ALL {
        assert_eq!(bucketed_segments_for(policy, 12), 5, "{}", policy.name());
        for slots in [1u32, 2, 4, 8, 12, 16, 48, 64] {
            let n = bucketed_segments_for(policy, slots);
            assert!(
                n <= BundleShape::Bucketed.max_segments(slots as i64),
                "{} at {slots} slots: {n} segments",
                policy.name()
            );
        }
        // Doubling the slots adds O(1) segments, not O(slots).
        let at_12 = bucketed_segments_for(policy, 12);
        let at_48 = bucketed_segments_for(policy, 48);
        assert!(
            at_48 <= at_12 + 2,
            "{}: 12→48 slots grew segments {at_12}→{at_48}",
            policy.name()
        );
    }
}

/// The O(m·log s) arc bound on a real trace-warmed graph: the measured
/// aggregate → machine arc count stays under the bound for `Bucketed`
/// and the compression vs `PerSlot` is at least 2× at 12 slots.
#[test]
fn warmed_cluster_ladder_arcs_hold_the_log_bound() {
    for policy in ScalePolicy::ALL {
        let mut measured = Vec::new();
        for shape in [BundleShape::PerSlot, BundleShape::Bucketed] {
            let spec = ScalePointSpec {
                utilization: 0.4,
                churn_rounds: 2,
                seed: 11,
                ..ScalePointSpec::new(policy, shape, 120, 12)
            };
            let p = run_scale_point(&spec);
            let bound = ladder_arc_bound(120, 12, shape);
            assert!(
                p.ladder_arcs <= bound,
                "{} {:?}: {} ladder arcs exceed bound {bound}",
                policy.name(),
                shape,
                p.ladder_arcs
            );
            assert!(p.placed > 0, "{}: warmup placed nothing", policy.name());
            assert!(
                p.warm_deltas > 0,
                "{}: churn rounds must ride the delta feed",
                policy.name()
            );
            measured.push(p.ladder_arcs);
        }
        assert!(
            measured[1] * 2 <= measured[0],
            "{}: bucketed {} vs per-slot {} — compression under 2x",
            policy.name(),
            measured[1],
            measured[0]
        );
    }
}

/// Boundary-aligned bursts: fair share k = 4 sits on a bucket boundary
/// (1, 2, 4, 8, 12), so the bucketed placement must price *identically*
/// to the per-slot optimum — zero true-cost delta — and spread exactly
/// as tightly (≤ ⌈k⌉ + 1 per machine).
#[test]
fn aligned_burst_quality_delta_is_zero() {
    let (m, slots, k) = (6usize, 12u32, 4usize);
    for policy in ScalePolicy::ALL {
        let q = burst_quality(policy, m, slots, k * m);
        assert_eq!(q.per_slot.placed, k * m, "{}", policy.name());
        assert_eq!(q.bucketed.placed, k * m, "{}", policy.name());
        assert_eq!(
            q.delta,
            0,
            "{}: aligned burst deviated from the per-slot optimum \
             (per-slot loads {:?}, bucketed loads {:?})",
            policy.name(),
            q.per_slot.loads,
            q.bucketed.loads
        );
        assert!(q.per_slot.max_load <= k + 1, "{}", policy.name());
        assert!(q.bucketed.max_load <= k + 1, "{}", policy.name());
    }
}

/// Unaligned bursts: the bucketed placement stays within **one marginal
/// step per task** of the per-slot optimum (the "≤ 1 cost unit" bound,
/// exact instances, canonicalized) and within the bucket boundary above
/// the fair share per machine.
#[test]
fn unaligned_burst_quality_within_one_step_per_task() {
    let (m, slots) = (6usize, 12u32);
    for policy in ScalePolicy::ALL {
        for tasks in [9usize, 15, 21, 27] {
            let q = burst_quality(policy, m, slots, tasks);
            assert_eq!(q.per_slot.placed, tasks, "{}", policy.name());
            assert_eq!(q.bucketed.placed, tasks, "{}", policy.name());
            assert!(
                q.delta >= 0,
                "{} {tasks}: per-slot must be optimal for the true cost",
                policy.name()
            );
            let per_task = q.per_task_units(policy, slots);
            assert!(
                per_task <= 1.0,
                "{} {tasks} tasks: {per_task:.3} marginal steps per task > 1 \
                 (per-slot {:?} vs bucketed {:?})",
                policy.name(),
                q.per_slot.loads,
                q.bucketed.loads
            );
            let fair = tasks.div_ceil(m);
            assert!(
                q.per_slot.max_load <= fair + 1,
                "{} {tasks}: per-slot max {}",
                policy.name(),
                q.per_slot.max_load
            );
            assert!(
                (q.bucketed.max_load as i64) <= bucket_ceiling(fair as i64),
                "{} {tasks}: bucketed max {} exceeds boundary {}",
                policy.name(),
                q.bucketed.max_load,
                bucket_ceiling(fair as i64)
            );
        }
    }
}

/// The fig3-blocking arithmetic, pinned: at the paper's 12,500-machine ×
/// 12-slot point, per-slot load-spreading would hold 150,000 parallel
/// ladder arcs; bucketed holds 62,500. (Pure arithmetic — the measured
/// full-scale point runs in the `scale_regression`/fig3 bench bins.)
#[test]
fn paper_point_arc_arithmetic() {
    assert_eq!(ladder_arc_bound(12_500, 12, BundleShape::PerSlot), 150_000);
    assert_eq!(ladder_arc_bound(12_500, 12, BundleShape::Bucketed), 62_500);
}
