//! End-to-end scheduler tests across policies and solver configurations.

use firmament::cluster::{ClusterEvent, ClusterState, Job, JobClass, Task, TopologySpec};
use firmament::core::{Firmament, SchedulingAction};
use firmament::mcmf::{DualConfig, SolverKind};
use firmament::policies::{
    LoadSpreadingPolicy, NetworkAwarePolicy, QuincyConfig, QuincyPolicy, SchedulingPolicy,
};

fn cluster(machines: usize, slots: u32) -> ClusterState {
    ClusterState::with_topology(&TopologySpec {
        machines,
        machines_per_rack: 20,
        slots_per_machine: slots,
    })
}

fn register<P: SchedulingPolicy>(state: &ClusterState, f: &mut Firmament<P>) {
    let machines: Vec<_> = state.machines.values().cloned().collect();
    for m in machines {
        f.handle_event(state, &ClusterEvent::MachineAdded { machine: m })
            .unwrap();
    }
}

fn submit<P: SchedulingPolicy>(
    state: &mut ClusterState,
    f: &mut Firmament<P>,
    job: u64,
    n: usize,
) {
    let j = Job::new(job, JobClass::Batch, 2, state.now);
    let tasks: Vec<Task> = (0..n)
        .map(|i| Task::new(job * 1000 + i as u64, job, state.now, 60_000_000))
        .collect();
    let ev = ClusterEvent::JobSubmitted { job: j, tasks };
    state.apply(&ev);
    f.handle_event(state, &ev).unwrap();
}

fn apply<P: SchedulingPolicy>(
    state: &mut ClusterState,
    f: &mut Firmament<P>,
    actions: &[SchedulingAction],
) {
    for a in actions {
        let ev = match a {
            SchedulingAction::Place { task, machine } => ClusterEvent::TaskPlaced {
                task: *task,
                machine: *machine,
                now: state.now,
            },
            SchedulingAction::Preempt { task } => ClusterEvent::TaskPreempted {
                task: *task,
                now: state.now,
            },
        };
        state.apply(&ev);
        f.handle_event(state, &ev).unwrap();
    }
}

#[test]
fn every_policy_schedules_a_full_workload() {
    // Load-spreading policy.
    {
        let mut state = cluster(10, 4);
        let mut f = Firmament::new(LoadSpreadingPolicy::new());
        register(&state, &mut f);
        submit(&mut state, &mut f, 0, 30);
        let o = f.schedule(&state).unwrap();
        assert_eq!(o.placed_tasks, 30, "load-spreading");
    }
    // Quincy policy.
    {
        let mut state = cluster(10, 4);
        let mut f = Firmament::new(QuincyPolicy::new(QuincyConfig::default()));
        register(&state, &mut f);
        submit(&mut state, &mut f, 0, 30);
        let o = f.schedule(&state).unwrap();
        assert_eq!(o.placed_tasks, 30, "quincy");
    }
    // Network-aware policy.
    {
        let mut state = cluster(10, 4);
        let mut f = Firmament::new(NetworkAwarePolicy::new());
        register(&state, &mut f);
        submit(&mut state, &mut f, 0, 30);
        let o = f.schedule(&state).unwrap();
        assert_eq!(o.placed_tasks, 30, "network-aware");
    }
}

#[test]
fn solver_kinds_produce_identical_objectives() {
    let mut objectives = Vec::new();
    for kind in [
        SolverKind::Dual,
        SolverKind::RelaxationOnly,
        SolverKind::CostScalingOnly,
    ] {
        let mut state = cluster(8, 3);
        let mut f = Firmament::with_solver(
            LoadSpreadingPolicy::new(),
            DualConfig {
                kind,
                ..Default::default()
            },
        );
        register(&state, &mut f);
        submit(&mut state, &mut f, 0, 20);
        let o = f.schedule(&state).unwrap();
        objectives.push(o.objective);
    }
    assert_eq!(objectives[0], objectives[1]);
    assert_eq!(objectives[1], objectives[2]);
}

#[test]
fn continuous_rescheduling_with_churn_stays_consistent() {
    let mut state = cluster(6, 3);
    let mut f = Firmament::new(LoadSpreadingPolicy::new());
    register(&state, &mut f);
    let mut next_job = 0u64;
    for round in 0..8 {
        submit(&mut state, &mut f, next_job, 4);
        next_job += 1;
        let o = f.schedule(&state).unwrap();
        apply(&mut state, &mut f, &o.actions);
        // Complete one running task per round.
        if let Some(t) = state.running_tasks().map(|t| t.id).min() {
            let ev = ClusterEvent::TaskCompleted {
                task: t,
                now: state.now + 1 + round,
            };
            state.apply(&ev);
            f.handle_event(&state, &ev).unwrap();
        }
        // Invariant: machine slot accounting never overcommits.
        for m in state.machines.values() {
            assert!(m.running.len() as u32 <= m.slots);
        }
    }
    assert!(f.rounds() == 8);
}

#[test]
fn machine_failure_requeues_and_reschedules() {
    let mut state = cluster(4, 2);
    let mut f = Firmament::new(LoadSpreadingPolicy::new());
    register(&state, &mut f);
    submit(&mut state, &mut f, 0, 6);
    let o = f.schedule(&state).unwrap();
    apply(&mut state, &mut f, &o.actions);
    assert_eq!(state.used_slots(), 6);
    // Fail a machine hosting tasks.
    let victim = state
        .machines
        .values()
        .find(|m| !m.running.is_empty())
        .map(|m| m.id)
        .unwrap();
    let ev = ClusterEvent::MachineRemoved {
        machine: victim,
        now: state.now + 5,
    };
    state.apply(&ev);
    f.handle_event(&state, &ev).unwrap();
    // The displaced tasks reschedule onto the remaining machines.
    let o = f.schedule(&state).unwrap();
    apply(&mut state, &mut f, &o.actions);
    assert_eq!(state.used_slots(), 6, "all tasks rescheduled after failure");
}

#[test]
fn oversubscribed_cluster_prefers_waiting_over_overcommit() {
    let mut state = cluster(2, 2);
    let mut f = Firmament::new(LoadSpreadingPolicy::new());
    register(&state, &mut f);
    submit(&mut state, &mut f, 0, 10);
    let o = f.schedule(&state).unwrap();
    assert_eq!(o.placed_tasks, 4);
    assert_eq!(o.unscheduled_tasks, 6);
    apply(&mut state, &mut f, &o.actions);
    for m in state.machines.values() {
        assert_eq!(m.running.len(), 2);
    }
}
