//! End-to-end scheduler tests across policies and solver configurations.

use firmament::cluster::ClusterEvent;
use firmament::core::Firmament;
use firmament::mcmf::{DualConfig, SolverKind};
mod common;
use common::{apply, cluster, register, submit};
use firmament::policies::{
    LoadSpreadingCostModel, NetworkAwareCostModel, OctopusCostModel, QuincyConfig, QuincyCostModel,
};

#[test]
fn every_policy_schedules_a_full_workload() {
    // Load-spreading policy.
    {
        let mut state = cluster(10, 4, 20);
        let mut f = Firmament::new(LoadSpreadingCostModel::new());
        register(&state, &mut f);
        submit(&mut state, &mut f, 0, 30);
        let o = f.schedule(&state).unwrap();
        assert_eq!(o.placed_tasks, 30, "load-spreading");
    }
    // Quincy policy.
    {
        let mut state = cluster(10, 4, 20);
        let mut f = Firmament::new(QuincyCostModel::new(QuincyConfig::default()));
        register(&state, &mut f);
        submit(&mut state, &mut f, 0, 30);
        let o = f.schedule(&state).unwrap();
        assert_eq!(o.placed_tasks, 30, "quincy");
    }
    // Network-aware policy.
    {
        let mut state = cluster(10, 4, 20);
        let mut f = Firmament::new(NetworkAwareCostModel::new());
        register(&state, &mut f);
        submit(&mut state, &mut f, 0, 30);
        let o = f.schedule(&state).unwrap();
        assert_eq!(o.placed_tasks, 30, "network-aware");
    }
    // Octopus (idle-preferring) policy.
    {
        let mut state = cluster(10, 4, 20);
        let mut f = Firmament::new(OctopusCostModel::new());
        register(&state, &mut f);
        submit(&mut state, &mut f, 0, 30);
        let o = f.schedule(&state).unwrap();
        assert_eq!(o.placed_tasks, 30, "octopus");
    }
}

#[test]
fn octopus_prefers_idle_machines() {
    // 10 machines x 4 slots; tasks arrive one per scheduling round (the
    // continuous-rescheduling regime the cost model is built for). The
    // quadratic load cost must route every arrival to an idle machine
    // until none remain: exactly one task per machine.
    let mut state = cluster(10, 4, 20);
    let mut f = Firmament::new(OctopusCostModel::new());
    register(&state, &mut f);
    for job in 0..10 {
        submit(&mut state, &mut f, job, 1);
        let o = f.schedule(&state).unwrap();
        apply(&mut state, &mut f, &o.actions);
    }
    for m in state.machines.values() {
        assert_eq!(
            m.running.len(),
            1,
            "machine {} must host exactly one task",
            m.id
        );
    }
}

#[test]
fn solver_kinds_produce_identical_objectives() {
    let mut objectives = Vec::new();
    for kind in [
        SolverKind::Dual,
        SolverKind::RelaxationOnly,
        SolverKind::CostScalingOnly,
    ] {
        let mut state = cluster(8, 3, 20);
        let mut f = Firmament::with_solver(
            LoadSpreadingCostModel::new(),
            DualConfig {
                kind,
                ..Default::default()
            },
        );
        register(&state, &mut f);
        submit(&mut state, &mut f, 0, 20);
        let o = f.schedule(&state).unwrap();
        objectives.push(o.objective);
    }
    assert_eq!(objectives[0], objectives[1]);
    assert_eq!(objectives[1], objectives[2]);
}

#[test]
fn continuous_rescheduling_with_churn_stays_consistent() {
    let mut state = cluster(6, 3, 20);
    let mut f = Firmament::new(LoadSpreadingCostModel::new());
    register(&state, &mut f);
    for round in 0..8 {
        submit(&mut state, &mut f, round, 4);
        let o = f.schedule(&state).unwrap();
        apply(&mut state, &mut f, &o.actions);
        // Complete one running task per round.
        if let Some(t) = state.running_tasks().map(|t| t.id).min() {
            let ev = ClusterEvent::TaskCompleted {
                task: t,
                now: state.now + 1 + round,
            };
            state.apply(&ev);
            f.handle_event(&state, &ev).unwrap();
        }
        // Invariant: machine slot accounting never overcommits.
        for m in state.machines.values() {
            assert!(m.running.len() as u32 <= m.slots);
        }
    }
    assert!(f.rounds() == 8);
}

#[test]
fn machine_failure_requeues_and_reschedules() {
    let mut state = cluster(4, 2, 20);
    let mut f = Firmament::new(LoadSpreadingCostModel::new());
    register(&state, &mut f);
    submit(&mut state, &mut f, 0, 6);
    let o = f.schedule(&state).unwrap();
    apply(&mut state, &mut f, &o.actions);
    assert_eq!(state.used_slots(), 6);
    // Fail a machine hosting tasks.
    let victim = state
        .machines
        .values()
        .find(|m| !m.running.is_empty())
        .map(|m| m.id)
        .unwrap();
    let ev = ClusterEvent::MachineRemoved {
        machine: victim,
        now: state.now + 5,
    };
    state.apply(&ev);
    f.handle_event(&state, &ev).unwrap();
    // The displaced tasks reschedule onto the remaining machines.
    let o = f.schedule(&state).unwrap();
    apply(&mut state, &mut f, &o.actions);
    assert_eq!(state.used_slots(), 6, "all tasks rescheduled after failure");
}

#[test]
fn oversubscribed_cluster_prefers_waiting_over_overcommit() {
    let mut state = cluster(2, 2, 20);
    let mut f = Firmament::new(LoadSpreadingCostModel::new());
    register(&state, &mut f);
    submit(&mut state, &mut f, 0, 10);
    let o = f.schedule(&state).unwrap();
    assert_eq!(o.placed_tasks, 4);
    assert_eq!(o.unscheduled_tasks, 6);
    apply(&mut state, &mut f, &o.actions);
    for m in state.machines.values() {
        assert_eq!(m.running.len(), 2);
    }
}
