//! Integration tests for the simulator: conservation laws and baseline
//! comparisons hold across schedulers.

use firmament::baselines::{
    KubernetesScheduler, MesosScheduler, QueueScheduler, SparrowScheduler, SwarmKitScheduler,
};
use firmament::cluster::TopologySpec;
use firmament::core::Firmament;
use firmament::policies::LoadSpreadingCostModel;
use firmament::sim::{run_flow_sim, run_queue_sim, SimConfig, TraceSpec};

fn config(seed: u64) -> SimConfig {
    SimConfig {
        topology: TopologySpec {
            machines: 15,
            machines_per_rack: 15,
            slots_per_machine: 4,
        },
        trace: TraceSpec {
            machines: 15,
            slots_per_machine: 4,
            target_utilization: 0.5,
            service_job_fraction: 0.0,
            median_task_duration_s: 2.0,
            duration_sigma: 0.5,
            seed,
            ..TraceSpec::default()
        },
        duration_s: 10.0,
        ..SimConfig::default()
    }
}

#[test]
fn flow_sim_conservation_laws() {
    let report = run_flow_sim(&config(1), Firmament::new(LoadSpreadingCostModel::new()));
    // Every completed task was placed at least once.
    assert!(report.completed_tasks <= report.placed_tasks);
    // Placement latency samples = first placements only.
    assert!(report.placement_latency.len() as u64 <= report.placed_tasks);
    assert!(report.final_utilization <= 1.0);
}

#[test]
fn every_baseline_completes_work() {
    let baselines: Vec<Box<dyn QueueScheduler>> = vec![
        Box::new(SwarmKitScheduler),
        Box::new(KubernetesScheduler),
        Box::new(MesosScheduler::new()),
        Box::new(SparrowScheduler::new(5)),
    ];
    for b in baselines {
        let name = b.name();
        let report = run_queue_sim(&config(2), b);
        assert!(report.placed_tasks > 0, "{name} placed nothing");
        assert!(report.completed_tasks > 0, "{name} completed nothing");
        assert!(
            report.completed_tasks <= report.placed_tasks,
            "{name} completed more than it placed"
        );
    }
}

#[test]
fn queue_latency_includes_decision_cost() {
    let mut cfg = config(3);
    cfg.queue_task_latency_us = 50_000; // 50 ms per decision
    cfg.warmup = false;
    let mut report = run_queue_sim(&cfg, Box::new(SwarmKitScheduler));
    if !report.placement_latency.is_empty() {
        assert!(
            report.placement_latency.min() >= 0.05,
            "decision latency must be charged"
        );
    }
}

#[test]
fn flow_sim_charges_solver_runtime_to_placements() {
    let report = run_flow_sim(&config(4), Firmament::new(LoadSpreadingCostModel::new()));
    // The solver ran and recorded its runtime in the timeline.
    assert_eq!(report.rounds as usize, report.runtime_timeline.len());
    assert!(report.rounds > 0);
}
