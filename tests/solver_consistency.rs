//! Cross-crate integration tests: all MCMF algorithms agree on optimal
//! objectives for policy-generated graphs, and property-style invariants
//! hold on randomized instances.
//!
//! The property tests use the workspace's own deterministic generator
//! (`XorShift64`) instead of an external property-testing framework: each
//! case derives its parameters from a fixed seed sequence, so failures
//! reproduce exactly.

use firmament::flow::testgen::{layered_instance, scheduling_instance, InstanceSpec, XorShift64};
use firmament::flow::validate::check_feasible;
use firmament::mcmf::{
    cost_scaling, cycle_canceling, relaxation, ssp, verify, DualSolver, SolveOptions,
};

#[test]
fn all_four_algorithms_agree_on_scheduling_graphs() {
    for seed in 0..6 {
        let spec = InstanceSpec {
            tasks: 50,
            machines: 12,
            slots_per_machine: 3,
            prefs_per_task: 3,
            ..InstanceSpec::default()
        };
        let objective = |f: &dyn Fn(&mut firmament::flow::FlowGraph) -> i64| {
            let mut inst = scheduling_instance(seed, &spec);
            f(&mut inst.graph)
        };
        let opts = SolveOptions::unlimited();
        let a = objective(&|g| cycle_canceling::solve(g, &opts).unwrap().objective);
        let b = objective(&|g| ssp::solve(g, &opts).unwrap().objective);
        let c = objective(&|g| cost_scaling::solve(g, &opts).unwrap().objective);
        let d = objective(&|g| relaxation::solve(g, &opts).unwrap().objective);
        assert_eq!(a, b, "seed {seed}: cycle canceling vs ssp");
        assert_eq!(b, c, "seed {seed}: ssp vs cost scaling");
        assert_eq!(c, d, "seed {seed}: cost scaling vs relaxation");
    }
}

#[test]
fn dual_solver_matches_single_algorithms() {
    let inst = scheduling_instance(11, &InstanceSpec::default());
    let mut dual = DualSolver::default();
    let out = dual.solve(&inst.graph, &SolveOptions::unlimited()).unwrap();
    let mut g = inst.graph.clone();
    let reference = ssp::solve(&mut g, &SolveOptions::unlimited()).unwrap();
    assert_eq!(out.solution.objective, reference.objective);
    assert!(verify::is_optimal(&out.graph));
}

/// Any generated scheduling instance solves to a feasible, optimal flow
/// whose objective matches across two independent algorithms.
#[test]
fn prop_solutions_feasible_and_agreeing() {
    let mut rng = XorShift64::new(0xC0FFEE);
    for case in 0..24 {
        let seed = rng.below(5000);
        let tasks = 5 + rng.below(55) as usize;
        let machines = 2 + rng.below(13) as usize;
        let slots = 1 + rng.below(4) as i64;
        let prefs = 1 + rng.below(4) as usize;
        let spec = InstanceSpec {
            tasks,
            machines,
            slots_per_machine: slots,
            prefs_per_task: prefs,
            ..InstanceSpec::default()
        };
        let ctx = format!("case {case}: seed {seed}, {tasks}t/{machines}m/{slots}s/{prefs}p");
        let mut a = scheduling_instance(seed, &spec);
        let mut b = scheduling_instance(seed, &spec);
        let opts = SolveOptions::unlimited();
        let s1 = relaxation::solve(&mut a.graph, &opts).unwrap();
        let s2 = cost_scaling::solve(&mut b.graph, &opts).unwrap();
        assert_eq!(s1.objective, s2.objective, "{ctx}");
        assert!(check_feasible(&a.graph).is_empty(), "{ctx}");
        assert!(check_feasible(&b.graph).is_empty(), "{ctx}");
        assert!(verify::is_optimal(&a.graph), "{ctx}");
    }
}

/// Layered DAG instances (longer augmenting paths) also agree.
#[test]
fn prop_layered_instances_agree() {
    let mut rng = XorShift64::new(0xBEEF);
    for case in 0..24 {
        let seed = rng.below(5000);
        let sources = 3 + rng.below(17) as usize;
        let layers = 2 + rng.below(3) as usize;
        let width = 2 + rng.below(4) as usize;
        let ctx = format!("case {case}: seed {seed}, {sources}src/{layers}l/{width}w");
        let mut a = layered_instance(seed, sources, layers, width);
        let mut b = a.clone();
        let opts = SolveOptions::unlimited();
        let s1 = relaxation::solve(&mut a, &opts).unwrap();
        let s2 = ssp::solve(&mut b, &opts).unwrap();
        assert_eq!(s1.objective, s2.objective, "{ctx}");
    }
}

/// Incremental cost scaling after random cost perturbations matches a
/// from-scratch solve of the mutated graph.
#[test]
fn prop_incremental_matches_scratch() {
    let mut rng = XorShift64::new(0xFEED);
    for case in 0..16 {
        let seed = rng.below(1000);
        let spec = InstanceSpec {
            tasks: 30,
            machines: 8,
            ..InstanceSpec::default()
        };
        let mut inst = scheduling_instance(seed, &spec);
        let mut inc = firmament::mcmf::incremental::IncrementalCostScaling::default();
        inc.solve(&mut inst.graph, &SolveOptions::unlimited())
            .unwrap();
        let arcs: Vec<_> = inst.graph.arc_ids().collect();
        let n_perturbations = 1 + rng.below(11) as usize;
        for _ in 0..n_perturbations {
            let idx = rng.below(200) as usize;
            let cost = 1 + rng.below(149) as i64;
            let a = arcs[idx % arcs.len()];
            inst.graph.set_arc_cost(a, cost).unwrap();
        }
        let warm = inc
            .solve(&mut inst.graph, &SolveOptions::unlimited())
            .unwrap();
        let mut fresh = inst.graph.clone();
        let scratch = cost_scaling::solve(&mut fresh, &SolveOptions::unlimited()).unwrap();
        assert_eq!(
            warm.objective, scratch.objective,
            "case {case}: seed {seed}, {n_perturbations} perturbations"
        );
    }
}
