//! Cross-crate integration tests: all MCMF algorithms agree on optimal
//! objectives for policy-generated graphs, and property-based invariants
//! hold on random instances.

use firmament::flow::testgen::{layered_instance, scheduling_instance, InstanceSpec};
use firmament::flow::validate::check_feasible;
use firmament::mcmf::{
    cost_scaling, cycle_canceling, relaxation, ssp, verify, DualSolver, SolveOptions,
};
use proptest::prelude::*;

#[test]
fn all_four_algorithms_agree_on_scheduling_graphs() {
    for seed in 0..6 {
        let spec = InstanceSpec {
            tasks: 50,
            machines: 12,
            slots_per_machine: 3,
            prefs_per_task: 3,
            ..InstanceSpec::default()
        };
        let objective = |f: &dyn Fn(&mut firmament::flow::FlowGraph) -> i64| {
            let mut inst = scheduling_instance(seed, &spec);
            f(&mut inst.graph)
        };
        let opts = SolveOptions::unlimited();
        let a = objective(&|g| cycle_canceling::solve(g, &opts).unwrap().objective);
        let b = objective(&|g| ssp::solve(g, &opts).unwrap().objective);
        let c = objective(&|g| cost_scaling::solve(g, &opts).unwrap().objective);
        let d = objective(&|g| relaxation::solve(g, &opts).unwrap().objective);
        assert_eq!(a, b, "seed {seed}: cycle canceling vs ssp");
        assert_eq!(b, c, "seed {seed}: ssp vs cost scaling");
        assert_eq!(c, d, "seed {seed}: cost scaling vs relaxation");
    }
}

#[test]
fn dual_solver_matches_single_algorithms() {
    let inst = scheduling_instance(11, &InstanceSpec::default());
    let mut dual = DualSolver::default();
    let out = dual.solve(&inst.graph, &SolveOptions::unlimited()).unwrap();
    let mut g = inst.graph.clone();
    let reference = ssp::solve(&mut g, &SolveOptions::unlimited()).unwrap();
    assert_eq!(out.solution.objective, reference.objective);
    assert!(verify::is_optimal(&out.graph));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any generated scheduling instance solves to a feasible, optimal flow
    /// whose objective matches across two independent algorithms.
    #[test]
    fn prop_solutions_feasible_and_agreeing(
        seed in 0u64..5000,
        tasks in 5usize..60,
        machines in 2usize..15,
        slots in 1i64..5,
        prefs in 1usize..5,
    ) {
        let spec = InstanceSpec {
            tasks,
            machines,
            slots_per_machine: slots,
            prefs_per_task: prefs,
            ..InstanceSpec::default()
        };
        let mut a = scheduling_instance(seed, &spec);
        let mut b = scheduling_instance(seed, &spec);
        let opts = SolveOptions::unlimited();
        let s1 = relaxation::solve(&mut a.graph, &opts).unwrap();
        let s2 = cost_scaling::solve(&mut b.graph, &opts).unwrap();
        prop_assert_eq!(s1.objective, s2.objective);
        prop_assert!(check_feasible(&a.graph).is_empty());
        prop_assert!(check_feasible(&b.graph).is_empty());
        prop_assert!(verify::is_optimal(&a.graph));
    }

    /// Layered DAG instances (longer augmenting paths) also agree.
    #[test]
    fn prop_layered_instances_agree(
        seed in 0u64..5000,
        sources in 3usize..20,
        layers in 2usize..5,
        width in 2usize..6,
    ) {
        let mut a = layered_instance(seed, sources, layers, width);
        let mut b = a.clone();
        let opts = SolveOptions::unlimited();
        let s1 = relaxation::solve(&mut a, &opts).unwrap();
        let s2 = ssp::solve(&mut b, &opts).unwrap();
        prop_assert_eq!(s1.objective, s2.objective);
    }

    /// Incremental cost scaling after random cost perturbations matches a
    /// from-scratch solve of the mutated graph.
    #[test]
    fn prop_incremental_matches_scratch(
        seed in 0u64..1000,
        perturbations in proptest::collection::vec((0usize..200, 1i64..150), 1..12),
    ) {
        let spec = InstanceSpec { tasks: 30, machines: 8, ..InstanceSpec::default() };
        let mut inst = scheduling_instance(seed, &spec);
        let mut inc = firmament::mcmf::incremental::IncrementalCostScaling::default();
        inc.solve(&mut inst.graph, &SolveOptions::unlimited()).unwrap();
        let arcs: Vec<_> = inst.graph.arc_ids().collect();
        for (idx, cost) in perturbations {
            let a = arcs[idx % arcs.len()];
            inst.graph.set_arc_cost(a, cost).unwrap();
        }
        let warm = inc.solve(&mut inst.graph, &SolveOptions::unlimited()).unwrap();
        let mut fresh = inst.graph.clone();
        let scratch = cost_scaling::solve(&mut fresh, &SolveOptions::unlimited()).unwrap();
        prop_assert_eq!(warm.objective, scratch.objective);
    }
}
